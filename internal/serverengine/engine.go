// Package serverengine implements a Prism server S_φ (paper §3.2 entity
// 2): it stores the secret-shared Table-11 columns outsourced by the m
// DB owners and evaluates queries obliviously — identical work per cell,
// no data-dependent branching — so access patterns and output sizes leak
// nothing (§3.4).
//
// The engine exposes the request/reply protocol of internal/protocol via
// transport.Handler. It never contacts another server; its only outbound
// calls go to the announcer S_a for max/min/median queries, exactly as
// the paper's trust model prescribes.
//
// Durability: a disk-backed engine (Options.Store + DiskBacked) keeps
// every column in the sharestore's chunked layout and records each
// completed registration in a per-table manifest (TableManifest: spec,
// completed owners, format version, registration epoch), written
// atomically only after the owner's columns are fully promoted to their
// live names. That manifest is what a restarted server trusts:
// Engine.Recover (Options.AutoRecover, prism-server -recover) scans the
// store, validates each manifest against the chunk indexes on disk, and
// re-registers complete tables — so a restart does not force owners to
// re-outsource. Tables that fail validation are quarantined into the
// store's .quarantine/ area with a machine-readable reason rather than
// served (or crashing boot); interrupted pending→live promotions are
// resumed; crashed mid-upload assemblies are reclaimed. See recover.go
// for the full state machine and docs/ARCHITECTURE.md for the on-disk
// format.
package serverengine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prism/internal/field"
	"prism/internal/modmath"
	"prism/internal/params"
	"prism/internal/perm"
	"prism/internal/prg"
	"prism/internal/protocol"
	"prism/internal/sharestore"
	"prism/internal/transport"
)

// psuBlock is the fixed cell-block size for PSU mask derivation. Both
// servers derive rand[] per block from the shared seed, so the stream is
// identical regardless of each server's thread count.
const psuBlock = 1 << 16

// Options configures an engine.
type Options struct {
	// Threads is the worker-pool width for per-cell loops (Figure 3's
	// thread sweep). 0 means GOMAXPROCS.
	Threads int
	// Store, when non-nil and DiskBacked, holds columns on disk; queries
	// then fetch them per request and report real fetch times.
	Store      *sharestore.Store
	DiskBacked bool
	// CacheColumns enables the per-table hot-chunk cache for disk-backed
	// serving: χ-shares and uint64 aggregation columns are cached at
	// chunk granularity per table epoch (invalidated whenever a Store or
	// Drop changes the table) instead of read per query. Cache hits
	// report zero fetch time and count in Stats.CacheHits.
	CacheColumns bool
	// CacheBytes bounds the hot-chunk cache per table (bytes); <= 0
	// leaves the cache unbounded (the legacy whole-column hot cache
	// behaviour). Ignored unless CacheColumns is set.
	CacheBytes int64
	// PendingTTL reclaims sharded-upload assemblies whose owner stopped
	// sending shards (a crash mid-upload): assemblies untouched for
	// longer than the TTL are swept — RAM buffers released, pending disk
	// columns deleted — on the next Store request. 0 disables the sweep
	// (stale assemblies then linger until the owner retries or the table
	// is dropped).
	PendingTTL time.Duration
	// DeltaMax triggers an automatic compaction pass once a table's
	// delta overlay holds at least this many entries (prism-server
	// -deltamax). 0 disables the density trigger; the overlay then grows
	// until an explicit Compact or the CompactEvery ticker runs.
	DeltaMax int
	// CompactEvery runs a background compaction pass over every table at
	// this period (prism-server -compact). 0 disables the ticker; call
	// Engine.Close to stop it.
	CompactEvery time.Duration
	// AnnouncerAddr and Caller let the engine forward max/min/median
	// slot arrays to S_a.
	AnnouncerAddr string
	Caller        transport.Caller
	// AutoRecover makes New reload serving state from the disk store's
	// table manifests (see Engine.Recover) before the engine answers its
	// first request, so a restarted disk-backed server resumes serving
	// without any owner re-outsourcing. Recovery never fails boot:
	// tables that do not validate are quarantined and the report (and
	// any store-scan error) is available via RecoveryReport. Ignored
	// unless DiskBacked with a Store.
	AutoRecover bool
	// Group is the server group this engine belongs to in a multi-group
	// deployment (0 for single-group). Data-plane requests tagged for a
	// different group are rejected, and the group id is persisted in
	// table manifests so a restarted server cannot adopt another group's
	// shares.
	Group int
}

// Engine is one Prism server. All request handlers are safe for
// concurrent use: table columns are immutable once registered, the
// worker-pool width is read atomically, and every piece of multi-round
// query scratch lives in a qid-keyed session (never in engine-global
// state), so any number of queries can be in flight simultaneously.
type Engine struct {
	view *params.ServerView
	opts Options

	// threads is the worker-pool width, read atomically by the per-cell
	// loops so SetThreads can run while queries are in flight.
	threads atomic.Int64

	powTab []uint64 // g^e mod η' for e ∈ [0, δ)

	mu     sync.RWMutex
	tables map[string]*table
	// epochFloor remembers the last registration epoch of tables this
	// process dropped, so a drop + re-outsource of the same name keeps
	// the epoch strictly increasing — an owner probing via ListTables
	// can never mistake the replacement for its original registration.
	// Guarded by mu; one uint64 per dropped name.
	epochFloor map[string]uint64

	// pending assembles sharded uploads (table → owner → partial
	// columns); a table epoch is registered only once every cell of
	// every column has arrived, so queries never see a half-upload.
	// storeMarks records the highest upload attempt seen per table and
	// owner so stragglers of an abandoned attempt are rejected instead
	// of clobbering a newer retry (see UploadID); Drop reclaims a
	// table's marks along with its pending assemblies, so neither map
	// grows with the server's lifetime table churn.
	pendMu     sync.Mutex
	pending    map[string]map[int]*pendingStore
	storeMarks map[string]map[int]uploadMark

	// s1inv/s2inv are the inverses of the server-side permutations,
	// materialised once on the first sharded Count/permuted-PSU request
	// (they index the permuted reply vectors by output position).
	s1invOnce, s2invOnce sync.Once
	s1inv, s2inv         perm.Perm

	sessMu   sync.Mutex
	sessions map[string]*querySession

	// storeMu serialises Stores per (table, owner) so two concurrent
	// conflicting uploads cannot interleave their unlocked disk spills;
	// different owners' uploads still proceed in parallel (they write
	// disjoint files).
	storeMuMu sync.Mutex
	storeMus  map[string]*sync.Mutex

	// manifestMu serialises per-table manifest read-modify-writes (two
	// owners completing uploads concurrently).
	manifestMu sync.Mutex

	// recovery holds the report (and scan error, if any) of the
	// AutoRecover pass New ran; nil when New did not recover.
	recovery    *RecoveryReport
	recoveryErr error

	// compactHook intercepts compaction ordering points (crash-recovery
	// tests); compactStop/compactDone manage the CompactEvery ticker.
	compactHookMu sync.Mutex
	compactHook   func(step string) error
	compactStop   chan struct{}
	compactDone   chan struct{}
	closeOnce     sync.Once

	// heldBytes/peakHeld track the column bytes this engine holds
	// resident: in-RAM pending upload assemblies, registered in-memory
	// tables, and the hot-chunk caches. The benchx memscale experiment
	// reads the peak to demonstrate O(chunk) residency under the chunked
	// store versus O(b) for in-memory serving.
	heldBytes atomic.Int64
	peakHeld  atomic.Int64
}

type table struct {
	spec   protocol.TableSpec
	owners map[int]*ownerCols
	// epoch counts registration events for this table (an owner
	// completing an upload, a recovery adoption). Disk-backed engines
	// persist it in the manifest, so it survives restarts and owners can
	// use ListTables to tell "still served" from "replaced since I last
	// probed".
	epoch uint64
	// cache is the current epoch's hot-chunk cache (nil unless
	// CacheColumns); every Store/Drop swaps in a fresh one, so queries
	// holding the old snapshot never see the new epoch's columns.
	cache *chunkCache
	// delta is the table's not-yet-compacted incremental updates (nil
	// until the first StoreDelta); deltaSeq is the last delta-log
	// sequence this process assigned; deltaFloor records, per owner, the
	// highest sequence superseded by a re-outsource (cold-boot replay
	// skips that owner's entries at or below it). compactMu serialises
	// compaction passes — Compact blocks behind an in-flight pass, so a
	// synchronous call is guaranteed to fold every entry inserted before
	// it; compacting just suppresses duplicate threshold-trigger
	// goroutines.
	delta      *deltaOverlay
	deltaSeq   uint64
	deltaFloor map[int]uint64
	compactMu  sync.Mutex
	compacting bool
}

// tableView is an immutable snapshot of one table taken under the engine
// lock: handlers work off the snapshot so a concurrent Store (another
// owner registering, a re-outsource) can never race the query's reads.
type tableView struct {
	spec   protocol.TableSpec
	owners []*ownerCols  // dense, index = owner id
	cache  *chunkCache   // the epoch's cache at snapshot time (may be nil)
	delta  *deltaOverlay // the delta overlay at snapshot time (may be nil)
}

type ownerCols struct {
	chi    []uint16
	chibar []uint16
	sums   map[string][]uint64
	vsums  map[string][]uint64
	cnt    []uint64
	vcnt   []uint64
	onDisk bool
}

// querySession holds every piece of server-side state for one in-flight
// multi-round query, keyed by qid. Each session has its own lock, so
// concurrent queries neither contend nor interfere; QueryDone retires
// the session.
type querySession struct {
	mu    sync.Mutex
	ext   *extremeState
	claim *claimState
}

type extremeState struct {
	kind      protocol.ExtremeKind
	shares    [][]byte
	got       int
	forwarded bool
	result    *protocol.AnnounceFetchReply
}

type claimState struct {
	fpos []uint16
	got  map[int]bool
}

// pendingStore is one owner's in-progress sharded upload, with the
// received windows tracked so overlapping or duplicate shards are
// rejected instead of silently overwriting cells. id is the attempt's
// UploadID — a shard from a newer attempt supersedes the whole assembly,
// so a retry after a failed upload never collides with its own stale
// windows.
//
// In-memory engines assemble into full-length columns (oc). Disk-backed
// engines instead stream every window straight into pending chunked
// columns ("pend<owner>.*") and rename them into place on completion, so
// a sharded upload never holds more than one window's cells in RAM —
// register-on-complete is preserved by the rename plus the table
// manifest, and queries never observe a half-uploaded column.
type pendingStore struct {
	id      string
	spec    protocol.TableSpec
	owner   int
	oc      *ownerCols // RAM assembly; nil when streaming to disk
	disk    bool       // windows stream to pending disk columns
	got     []protocol.Range
	covered uint64
	touched time.Time // last shard arrival, for the TTL sweep
}

// uploadMark is the newest upload attempt observed for one
// (table, owner): attempts of the same epoch with a lower seq are
// stale (abandoned and already superseded) and rejected.
type uploadMark struct {
	epoch string
	seq   uint64
}

// parseUploadID splits an "<epoch>/<seq>" upload id. ok is false for
// ids that don't follow the ordered format (foreign clients); those
// fall back to plain last-attempt-supersedes semantics.
func parseUploadID(id string) (epoch string, seq uint64, ok bool) {
	i := strings.LastIndexByte(id, '/')
	if i < 0 {
		return "", 0, false
	}
	seq, err := strconv.ParseUint(id[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return id[:i], seq, true
}

// colDef names one on-disk column of a table layout (without the
// "o<owner>." prefix) and its element width in bytes.
type colDef struct {
	name  string
	width int
}

// specCols enumerates the columns this server stores per owner under a
// table spec, in a deterministic order.
func (e *Engine) specCols(spec protocol.TableSpec) []colDef {
	var out []colDef
	if e.view.Index < 2 {
		out = append(out, colDef{"chi", 2})
		if spec.HasVerify {
			out = append(out, colDef{"chibar", 2})
		}
	}
	for _, col := range spec.AggCols {
		out = append(out, colDef{"sum." + col, 8})
		if spec.HasVerify {
			out = append(out, colDef{"vsum." + col, 8})
		}
	}
	if spec.HasCount {
		out = append(out, colDef{"cnt", 8})
		if spec.HasVerify {
			out = append(out, colDef{"vcnt", 8})
		}
	}
	return out
}

// colKey is the on-disk column name for one owner's column.
func colKey(owner int, col string) string { return fmt.Sprintf("o%d.%s", owner, col) }

// pendColKey is the pending (streaming upload) name of the same column.
func pendColKey(owner int, col string) string { return fmt.Sprintf("pend%d.%s", owner, col) }

// ManifestVersion is the current TableManifest format version. Version
// 0 manifests (written before the field existed) decode identically and
// are accepted by Recover; manifests from a newer format are quarantined
// rather than guessed at.
const ManifestVersion = 1

// TableManifest is the durable registration record a disk-backed server
// writes once an owner's upload completes: the table layout plus which
// owners have fully outsourced, a format version, and the registration
// epoch (bumped on every registration event, so owners probing via
// ListTables can distinguish "still served" from "re-registered since").
// Streamed shard windows live under pending column names until the
// manifest-covered rename, so a restarted server reloading from disk can
// trust every "o<j>.*" column the manifest vouches for.
type TableManifest struct {
	Version int
	Epoch   uint64
	Spec    protocol.TableSpec
	Owners  []int
	// DeltaFloor records, per owner, the highest delta-log sequence
	// superseded by a later full re-outsource: cold-boot replay skips
	// that owner's entries at or below the floor (they describe the
	// previous share stream). Absent for tables that never mixed deltas
	// with a re-outsource; older manifests decode with a nil map.
	DeltaFloor map[int]uint64 `json:",omitempty"`
	// Group is the server group that wrote the manifest. Recovery
	// quarantines a manifest from another group rather than serving its
	// shares (they cover a different domain slice). Absent in manifests
	// written by single-group deployments, which decode as group 0.
	Group int `json:",omitempty"`
}

// ocBytes is the resident size of an in-memory column set (0 for nil or
// spilled-to-disk sets).
func ocBytes(oc *ownerCols) int64 {
	if oc == nil {
		return 0
	}
	n := 2 * (int64(len(oc.chi)) + int64(len(oc.chibar)))
	for _, v := range oc.sums {
		n += 8 * int64(len(v))
	}
	for _, v := range oc.vsums {
		n += 8 * int64(len(v))
	}
	n += 8 * (int64(len(oc.cnt)) + int64(len(oc.vcnt)))
	return n
}

// trackHeld adjusts the held-bytes gauge and its peak.
func (e *Engine) trackHeld(delta int64) {
	cur := e.heldBytes.Add(delta)
	for {
		peak := e.peakHeld.Load()
		if cur <= peak || e.peakHeld.CompareAndSwap(peak, cur) {
			break
		}
	}
	site := e.site()
	mHeldBytes.Set(site, cur)
	mPeakHeldBytes.Set(site, e.peakHeld.Load())
}

// HeldBytes reports the column bytes currently resident (pending
// assemblies, in-memory tables, hot-chunk caches).
func (e *Engine) HeldBytes() int64 { return e.heldBytes.Load() }

// PeakHeldBytes reports the high-water mark of HeldBytes since the last
// ResetHeldPeak.
func (e *Engine) PeakHeldBytes() int64 { return e.peakHeld.Load() }

// ResetHeldPeak restarts the peak measurement from the current level.
func (e *Engine) ResetHeldPeak() { e.peakHeld.Store(e.heldBytes.Load()) }

// PendingUploads reports the number of in-progress sharded-upload
// assemblies (tests and monitoring).
func (e *Engine) PendingUploads() int {
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	n := 0
	for _, byOwner := range e.pending {
		n += len(byOwner)
	}
	return n
}

// New builds an engine for server view v.
func New(v *params.ServerView, opts Options) *Engine {
	if opts.Threads <= 0 {
		opts.Threads = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		view:       v,
		opts:       opts,
		powTab:     modmath.PowTable(v.G, v.Delta, v.EtaPrime),
		tables:     make(map[string]*table),
		epochFloor: make(map[string]uint64),
		pending:    make(map[string]map[int]*pendingStore),
		storeMarks: make(map[string]map[int]uploadMark),
		sessions:   make(map[string]*querySession),
		storeMus:   make(map[string]*sync.Mutex),
	}
	e.threads.Store(int64(opts.Threads))
	if opts.AutoRecover && opts.DiskBacked && opts.Store != nil {
		e.recovery, e.recoveryErr = e.Recover()
	}
	if opts.CompactEvery > 0 {
		e.startCompactor(opts.CompactEvery)
	}
	return e
}

// RecoveryReport returns the outcome of the AutoRecover pass New ran
// (nil when the engine was not built with Options.AutoRecover). The
// error reports a store-scan failure; per-table problems never error —
// they quarantine the table and show up in the report.
func (e *Engine) RecoveryReport() (*RecoveryReport, error) {
	return e.recovery, e.recoveryErr
}

// SetThreads adjusts the worker-pool width (thread-sweep benchmarks and
// live reconfiguration). Safe to call while queries are in flight: loops
// already running finish at their old width, subsequent loops use n.
func (e *Engine) SetThreads(n int) {
	if n > 0 {
		e.threads.Store(int64(n))
	}
}

// session returns (creating if needed) the state bundle for a query id.
func (e *Engine) session(qid string) *querySession {
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	s, ok := e.sessions[qid]
	if !ok {
		s = &querySession{}
		e.sessions[qid] = s
	}
	return s
}

// peekSession returns the session for qid without creating one.
func (e *Engine) peekSession(qid string) (*querySession, bool) {
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	s, ok := e.sessions[qid]
	return s, ok
}

// endSession drops all state for a query id.
func (e *Engine) endSession(qid string) {
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	delete(e.sessions, qid)
}

// Sessions reports the number of live query sessions (tests and
// monitoring).
func (e *Engine) Sessions() int {
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	return len(e.sessions)
}

// Group reports the server group this engine serves.
func (e *Engine) Group() int { return e.opts.Group }

// requestGroup extracts the group tag from data-plane requests. The
// second return is false for messages that carry no group routing
// (fetch polls and lifecycle cleanup follow an already-validated
// submit, so they pass untagged).
func requestGroup(req any) (int, bool) {
	switch r := req.(type) {
	case protocol.StoreRequest:
		return r.Group, true
	case protocol.StoreDeltaRequest:
		return r.Group, true
	case protocol.PSIRequest:
		return r.Group, true
	case protocol.PSIVerifyRequest:
		return r.Group, true
	case protocol.CountRequest:
		return r.Group, true
	case protocol.PSURequest:
		return r.Group, true
	case protocol.AggRequest:
		return r.Group, true
	case protocol.ExtremeSubmitRequest:
		return r.Group, true
	case protocol.ClaimSubmitRequest:
		return r.Group, true
	}
	return 0, false
}

// Handle implements transport.Handler.
func (e *Engine) Handle(ctx context.Context, req any) (any, error) {
	if g, ok := requestGroup(req); ok && g != e.opts.Group {
		return nil, fmt.Errorf("server %d (group %d): request targets group %d", e.view.Index, e.opts.Group, g)
	}
	switch r := req.(type) {
	case protocol.StoreRequest:
		return e.handleStore(r)
	case protocol.StoreDeltaRequest:
		return e.handleStoreDelta(r)
	case protocol.DropRequest:
		return e.handleDrop(r)
	case protocol.PSIRequest:
		return e.handlePSI(r)
	case protocol.PSIVerifyRequest:
		return e.handlePSIVerify(r)
	case protocol.CountRequest:
		return e.handleCount(r)
	case protocol.PSURequest:
		return e.handlePSU(r)
	case protocol.AggRequest:
		return e.handleAgg(r)
	case protocol.ExtremeSubmitRequest:
		return e.handleExtremeSubmit(ctx, r)
	case protocol.ExtremeFetchRequest:
		return e.handleExtremeFetch(ctx, r)
	case protocol.ClaimSubmitRequest:
		return e.handleClaimSubmit(r)
	case protocol.ClaimFetchRequest:
		return e.handleClaimFetch(r)
	case protocol.ListTablesRequest:
		return e.handleListTables(), nil
	case protocol.PingRequest:
		return e.handlePing(r)
	case protocol.QueryDoneRequest:
		e.endSession(r.QueryID)
		return protocol.QueryDoneReply{}, nil
	default:
		return nil, fmt.Errorf("server %d: unknown request type %T", e.view.Index, req)
	}
}

// handlePing answers the liveness probe. It deliberately reads no table
// or session state: a ping must stay cheap and side-effect-free under
// overload, when health checkers probe hardest.
func (e *Engine) handlePing(protocol.PingRequest) (any, error) {
	defer e.observeRPC("ping")()
	return protocol.PingReply{Site: e.site()}, nil
}

// ---- storage ----

func (e *Engine) handleStore(r protocol.StoreRequest) (any, error) {
	defer e.observeRPC("store")()
	if e.opts.PendingTTL > 0 {
		e.sweepPending(time.Now())
	}
	if r.Owner < 0 || r.Owner >= e.view.M {
		return nil, fmt.Errorf("server %d: owner index %d out of range [0,%d)", e.view.Index, r.Owner, e.view.M)
	}
	b := r.Spec.B
	if !r.Spec.Plain && b != e.view.B {
		return nil, fmt.Errorf("server %d: table %q has %d cells, system domain is %d", e.view.Index, r.Spec.Name, b, e.view.B)
	}
	n := b // cells carried by this request
	if r.Shard.Sharded() {
		if err := r.Shard.Validate(b); err != nil {
			return nil, fmt.Errorf("server %d: %w", e.view.Index, err)
		}
		n = r.Shard.Count
	}
	if err := e.checkStoreLens(&r, n); err != nil {
		return nil, err
	}

	// One upload at a time per (table, owner): the spill below runs
	// outside the engine lock, and two interleaved conflicting uploads
	// from the same owner would otherwise mix their bytes on disk.
	// Sharded uploads serialise their shard copies on the same lock.
	mu := e.storeLock(fmt.Sprintf("%s/%d", r.Spec.Name, r.Owner))
	mu.Lock()
	defer mu.Unlock()

	// Reject a conflicting re-store before anything touches disk: a
	// spill for a table with a different cell count would overwrite the
	// owner's on-disk columns with wrong-length data while queries keep
	// serving the registered spec.
	e.mu.Lock()
	err := e.storeConflict(r.Spec)
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}

	if r.Shard.Sharded() {
		oc, covered, err := e.absorbShard(&r)
		if err != nil {
			return nil, err
		}
		if oc == nil {
			return protocol.StoreReply{Cells: covered}, nil // more shards to come
		}
		return e.finishStore(r.Spec, r.Owner, oc)
	}

	return e.finishStore(r.Spec, r.Owner, &ownerCols{
		chi:    r.ChiAdd,
		chibar: r.ChiBarAdd,
		sums:   r.SumCols,
		vsums:  r.VSumCols,
		cnt:    r.CountCol,
		vcnt:   r.VCountCol,
	})
}

// checkStoreLens validates that every column the spec calls for carries
// exactly n cells (the whole table, or one shard's window).
func (e *Engine) checkStoreLens(r *protocol.StoreRequest, n uint64) error {
	if e.view.Index < 2 {
		if uint64(len(r.ChiAdd)) != n {
			return fmt.Errorf("server %d: χ share length %d != %d cells", e.view.Index, len(r.ChiAdd), n)
		}
		if r.Spec.HasVerify && uint64(len(r.ChiBarAdd)) != n {
			return fmt.Errorf("server %d: χ̄ share length %d != %d cells", e.view.Index, len(r.ChiBarAdd), n)
		}
	}
	for _, col := range r.Spec.AggCols {
		if uint64(len(r.SumCols[col])) != n {
			return fmt.Errorf("server %d: column %q share length mismatch", e.view.Index, col)
		}
		if r.Spec.HasVerify && uint64(len(r.VSumCols[col])) != n {
			return fmt.Errorf("server %d: v-column %q share length mismatch", e.view.Index, col)
		}
	}
	if r.Spec.HasCount && uint64(len(r.CountCol)) != n {
		return fmt.Errorf("server %d: count column length mismatch", e.view.Index)
	}
	if r.Spec.HasCount && r.Spec.HasVerify && uint64(len(r.VCountCol)) != n {
		return fmt.Errorf("server %d: v-count column length mismatch", e.view.Index)
	}
	return nil
}

// storeConflict rejects a (re-)store whose cell count disagrees with the
// registered table. Caller holds e.mu.
func (e *Engine) storeConflict(spec protocol.TableSpec) error {
	if t, ok := e.tables[spec.Name]; ok && t.spec.B != spec.B {
		return fmt.Errorf("server %d: table %q cell-count conflict", e.view.Index, spec.Name)
	}
	return nil
}

// absorbShard folds one shard's column windows into the owner's pending
// upload, creating it on the first shard. In-memory engines copy the
// window into full-length RAM columns; disk-backed engines stream it
// straight into pending chunked columns so resident memory stays
// O(window) regardless of the domain. It returns the assembled columns
// once every cell has arrived (nil while incomplete), plus the covered
// cell count. Caller holds the (table, owner) store lock.
func (e *Engine) absorbShard(r *protocol.StoreRequest) (*ownerCols, uint64, error) {
	stream := e.opts.DiskBacked && e.opts.Store != nil
	e.pendMu.Lock()
	byOwner := e.pending[r.Spec.Name]
	var p *pendingStore
	if byOwner != nil {
		p = byOwner[r.Owner]
	}
	if epoch, seq, okID := parseUploadID(r.UploadID); okID {
		// Reject stragglers of an attempt the owner already abandoned or
		// completed: over a real network, cancelled requests can still
		// execute server-side after the owner has started (or finished)
		// a retry, and must neither reset a newer assembly, re-register
		// stale columns, nor re-create a full-size assembly from a
		// duplicate of an attempt that already completed. (Attempts from
		// different epochs — an owner restart — cannot be ordered and
		// resolve last-writer-wins; colliding with a restarted owner's
		// stragglers fails that upload loudly, and its next attempt
		// succeeds once they drain.)
		marks := e.storeMarks[r.Spec.Name]
		if marks == nil {
			marks = make(map[int]uploadMark)
			e.storeMarks[r.Spec.Name] = marks
		}
		if m, have := marks[r.Owner]; have && m.epoch == epoch &&
			(seq < m.seq || (seq == m.seq && (p == nil || p.id != r.UploadID))) {
			e.pendMu.Unlock()
			return nil, 0, fmt.Errorf("server %d: table %q upload attempt %q superseded or already completed", e.view.Index, r.Spec.Name, r.UploadID)
		}
		marks[r.Owner] = uploadMark{epoch: epoch, seq: seq}
	}
	fresh := false
	var replaced *pendingStore
	if p == nil || p.id != r.UploadID {
		// First shard, or a fresh attempt superseding a stale assembly
		// left behind by a failed/cancelled upload.
		replaced = p
		p = &pendingStore{id: r.UploadID, spec: r.Spec, owner: r.Owner, disk: stream}
		if byOwner == nil {
			byOwner = make(map[int]*pendingStore)
			e.pending[r.Spec.Name] = byOwner
		}
		byOwner[r.Owner] = p
		fresh = true
	}
	p.touched = time.Now()
	e.pendMu.Unlock()

	if replaced != nil && replaced.oc != nil {
		e.trackHeld(-ocBytes(replaced.oc)) // superseded RAM assembly released
	}
	if !specEqual(p.spec, r.Spec) {
		return nil, 0, fmt.Errorf("server %d: table %q shard spec differs from first shard", e.view.Index, r.Spec.Name)
	}
	for _, g := range p.got {
		if r.Shard.Offset < g.End() && g.Offset < r.Shard.End() {
			return nil, 0, fmt.Errorf("server %d: table %q shard [%d, %d) overlaps received [%d, %d)",
				e.view.Index, r.Spec.Name, r.Shard.Offset, r.Shard.End(), g.Offset, g.End())
		}
	}
	if fresh {
		if stream {
			// Initialise the pending chunked columns (replacing any left
			// by a superseded attempt).
			for _, cd := range e.specCols(r.Spec) {
				name := pendColKey(r.Owner, cd.name)
				var err error
				if cd.width == 2 {
					err = e.opts.Store.CreateU16(r.Spec.Name, name, r.Spec.B)
				} else {
					err = e.opts.Store.CreateU64(r.Spec.Name, name, r.Spec.B)
				}
				if err != nil {
					return nil, 0, err
				}
			}
		} else {
			p.oc = e.newPendingCols(r.Spec)
			e.trackHeld(ocBytes(p.oc))
		}
	}

	if p.disk {
		if err := e.writePendingWindow(r); err != nil {
			return nil, 0, err
		}
	} else {
		off := r.Shard.Offset
		oc := p.oc
		if oc.chi != nil {
			copy(oc.chi[off:], r.ChiAdd)
		}
		if oc.chibar != nil {
			copy(oc.chibar[off:], r.ChiBarAdd)
		}
		for _, col := range r.Spec.AggCols {
			copy(oc.sums[col][off:], r.SumCols[col])
			if r.Spec.HasVerify {
				copy(oc.vsums[col][off:], r.VSumCols[col])
			}
		}
		if oc.cnt != nil {
			copy(oc.cnt[off:], r.CountCol)
		}
		if oc.vcnt != nil && r.VCountCol != nil {
			copy(oc.vcnt[off:], r.VCountCol)
		}
	}
	// Refresh the idle clock now that the window has been absorbed: a
	// slow-but-live writer whose windows take a long time to land (large
	// shards, slow disk) must not have the write time itself consume its
	// idle budget.
	e.pendMu.Lock()
	p.touched = time.Now()
	e.pendMu.Unlock()
	p.got = append(p.got, r.Shard)
	p.covered += r.Shard.Count
	if p.covered < r.Spec.B {
		return nil, p.covered, nil
	}

	// Complete: retire the pending entry; the caller registers the
	// columns.
	e.pendMu.Lock()
	delete(byOwner, r.Owner)
	if len(byOwner) == 0 {
		delete(e.pending, r.Spec.Name)
	}
	e.pendMu.Unlock()
	if p.disk {
		// Promote the pending columns to their live names; only now can
		// a query (or a restarted server following the manifest) see
		// them.
		for _, cd := range e.specCols(r.Spec) {
			if err := e.opts.Store.RenameColumn(r.Spec.Name, pendColKey(r.Owner, cd.name), colKey(r.Owner, cd.name)); err != nil {
				return nil, 0, err
			}
		}
		return &ownerCols{onDisk: true}, p.covered, nil
	}
	e.trackHeld(-ocBytes(p.oc)) // hand-off: finishStore re-accounts it as a registered table
	return p.oc, p.covered, nil
}

// writePendingWindow streams one shard's column windows into the pending
// chunked columns. Caller holds the (table, owner) store lock.
func (e *Engine) writePendingWindow(r *protocol.StoreRequest) error {
	st := e.opts.Store
	tbl := r.Spec.Name
	off := r.Shard.Offset
	if e.view.Index < 2 {
		if err := st.WriteU16Range(tbl, pendColKey(r.Owner, "chi"), off, r.ChiAdd); err != nil {
			return err
		}
		if r.Spec.HasVerify {
			if err := st.WriteU16Range(tbl, pendColKey(r.Owner, "chibar"), off, r.ChiBarAdd); err != nil {
				return err
			}
		}
	}
	for _, col := range r.Spec.AggCols {
		if err := st.WriteU64Range(tbl, pendColKey(r.Owner, "sum."+col), off, r.SumCols[col]); err != nil {
			return err
		}
		if r.Spec.HasVerify {
			if err := st.WriteU64Range(tbl, pendColKey(r.Owner, "vsum."+col), off, r.VSumCols[col]); err != nil {
				return err
			}
		}
	}
	if r.Spec.HasCount {
		if err := st.WriteU64Range(tbl, pendColKey(r.Owner, "cnt"), off, r.CountCol); err != nil {
			return err
		}
		if r.Spec.HasVerify {
			if err := st.WriteU64Range(tbl, pendColKey(r.Owner, "vcnt"), off, r.VCountCol); err != nil {
				return err
			}
		}
	}
	return nil
}

// sweepPending reclaims sharded-upload assemblies whose last shard
// arrived more than Options.PendingTTL ago — the owner crashed or gave
// up mid-upload. RAM assemblies release their buffers; streamed
// assemblies delete their pending disk columns. Assemblies whose
// (table, owner) store lock is busy are skipped (that upload is alive).
// Returns the number of assemblies swept.
func (e *Engine) sweepPending(now time.Time) int {
	ttl := e.opts.PendingTTL
	if ttl <= 0 {
		return 0
	}
	mPendingSweeps.Inc()
	type victim struct {
		table string
		owner int
		p     *pendingStore
	}
	e.pendMu.Lock()
	var victims []victim
	for tbl, byOwner := range e.pending {
		for owner, p := range byOwner {
			if now.Sub(p.touched) > ttl {
				victims = append(victims, victim{tbl, owner, p})
			}
		}
	}
	e.pendMu.Unlock()
	swept := 0
	for _, v := range victims {
		mu := e.storeLock(fmt.Sprintf("%s/%d", v.table, v.owner))
		if !mu.TryLock() {
			continue // a live upload holds the lock; not stale after all
		}
		e.pendMu.Lock()
		cur := e.pending[v.table][v.owner]
		// Re-check the idle time under the lock: a shard that landed
		// while this sweep scanned other victims refreshed touched and
		// resets the budget.
		stale := cur == v.p && now.Sub(cur.touched) > ttl
		if stale {
			delete(e.pending[v.table], v.owner)
			if len(e.pending[v.table]) == 0 {
				delete(e.pending, v.table)
			}
		}
		e.pendMu.Unlock()
		if stale {
			if v.p.oc != nil {
				e.trackHeld(-ocBytes(v.p.oc))
			}
			if v.p.disk {
				for _, cd := range e.specCols(v.p.spec) {
					e.opts.Store.DeleteColumn(v.table, pendColKey(v.owner, cd.name))
				}
			}
			swept++
		}
		mu.Unlock()
	}
	mPendingReclaimed.Add(int64(swept))
	return swept
}

// newPendingCols allocates full-length columns for the table layout this
// server holds under spec.
func (e *Engine) newPendingCols(spec protocol.TableSpec) *ownerCols {
	b := spec.B
	oc := &ownerCols{}
	if e.view.Index < 2 {
		oc.chi = make([]uint16, b)
		if spec.HasVerify {
			oc.chibar = make([]uint16, b)
		}
	}
	if len(spec.AggCols) > 0 {
		oc.sums = make(map[string][]uint64, len(spec.AggCols))
		if spec.HasVerify {
			oc.vsums = make(map[string][]uint64, len(spec.AggCols))
		}
		for _, col := range spec.AggCols {
			oc.sums[col] = make([]uint64, b)
			if spec.HasVerify {
				oc.vsums[col] = make([]uint64, b)
			}
		}
	}
	if spec.HasCount {
		oc.cnt = make([]uint64, b)
		if spec.HasVerify {
			oc.vcnt = make([]uint64, b)
		}
	}
	return oc
}

// specEqual compares the table layouts of two shards.
func specEqual(a, b protocol.TableSpec) bool {
	if a.Name != b.Name || a.B != b.B || a.HasVerify != b.HasVerify ||
		a.HasCount != b.HasCount || a.Plain != b.Plain || len(a.AggCols) != len(b.AggCols) {
		return false
	}
	for i := range a.AggCols {
		if a.AggCols[i] != b.AggCols[i] {
			return false
		}
	}
	return true
}

// finishStore spills (disk mode) and registers one owner's assembled
// columns as the table's current epoch. Caller holds the (table, owner)
// store lock.
func (e *Engine) finishStore(spec protocol.TableSpec, owner int, oc *ownerCols) (any, error) {
	// Spill to disk BEFORE registering: once an ownerCols is visible in
	// the table map it is immutable, so concurrent queries can read it
	// without holding the engine lock. Streamed sharded uploads arrive
	// already on disk (oc.onDisk) and skip the spill.
	if e.opts.DiskBacked && e.opts.Store != nil && !oc.onDisk {
		if err := e.spill(spec.Name, owner, oc); err != nil {
			return nil, err
		}
	}

	e.mu.Lock()
	// Re-check: a concurrent Store may have created the table while the
	// spill ran unlocked.
	if err := e.storeConflict(spec); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	t, ok := e.tables[spec.Name]
	if !ok {
		t = &table{spec: spec, owners: make(map[int]*ownerCols), epoch: e.epochFloor[spec.Name]}
		e.tables[spec.Name] = t
	}
	e.trackHeld(ocBytes(oc) - ocBytes(t.owners[owner]))
	t.owners[owner] = oc
	t.epoch++
	if t.delta != nil {
		// A full re-outsource replaces this owner's base wholesale: its
		// pending delta entries describe the previous share stream and
		// must not patch the new columns.
		e.trackHeld(-t.delta.dropOwner(owner))
	}
	if t.deltaSeq > 0 && e.opts.DiskBacked && e.opts.Store != nil {
		// Likewise fence the owner's on-disk delta segments out of
		// cold-boot replay (the floor is persisted in the manifest).
		if t.deltaFloor == nil {
			t.deltaFloor = make(map[int]uint64)
		}
		t.deltaFloor[owner] = t.deltaSeq
	}
	if e.opts.CacheColumns && e.opts.DiskBacked {
		// New table epoch: invalidate hot chunks (release their bytes).
		if t.cache != nil {
			t.cache.discard()
		}
		t.cache = newChunkCache(e.opts.CacheBytes, e.trackHeld)
	}
	e.mu.Unlock()

	if e.opts.DiskBacked && e.opts.Store != nil {
		// Durable registration record: written only after the owner's
		// columns are fully assembled and promoted to their live names.
		// The registration snapshot is taken while holding manifestMu, so
		// concurrent completions serialise snapshot-then-write in order
		// and a stale snapshot can never overwrite a newer manifest.
		if err := e.writeManifestSnapshot(spec.Name, spec); err != nil {
			return nil, err
		}
	}
	return protocol.StoreReply{Cells: spec.B}, nil
}

// storeLock returns the upload mutex for a (table, owner) key.
func (e *Engine) storeLock(key string) *sync.Mutex {
	e.storeMuMu.Lock()
	defer e.storeMuMu.Unlock()
	mu, ok := e.storeMus[key]
	if !ok {
		mu = &sync.Mutex{}
		e.storeMus[key] = mu
	}
	return mu
}

// handleListTables reports the tables this server currently serves:
// name/layout, the owners that have completed outsourcing, and the
// registration epoch. Owners use it to probe a restarted server's state
// without re-outsourcing; the reply is sorted by table name so probes
// are comparable across servers.
func (e *Engine) handleListTables() protocol.ListTablesReply {
	e.mu.RLock()
	tables := make([]protocol.TableStatus, 0, len(e.tables))
	for _, t := range e.tables {
		st := protocol.TableStatus{Spec: t.spec, Epoch: t.epoch}
		for j := range t.owners {
			st.Owners = append(st.Owners, j)
		}
		sort.Ints(st.Owners)
		tables = append(tables, st)
	}
	e.mu.RUnlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Spec.Name < tables[j].Spec.Name })
	return protocol.ListTablesReply{Tables: tables}
}

func (e *Engine) handleDrop(r protocol.DropRequest) (any, error) {
	defer e.observeRPC("drop")()
	mDeltaBacklog.Set(r.Table, 0)
	e.mu.Lock()
	if t, ok := e.tables[r.Table]; ok {
		for _, oc := range t.owners {
			e.trackHeld(-ocBytes(oc))
		}
		if t.cache != nil {
			t.cache.discard()
		}
		if t.delta != nil {
			e.trackHeld(-t.delta.heldBytes())
		}
		// A later re-outsource under the same name continues the epoch
		// rather than restarting it, so probes can't mistake the
		// replacement for the original registration.
		e.epochFloor[r.Table] = t.epoch
		delete(e.tables, r.Table)
	}
	e.mu.Unlock()
	e.pendMu.Lock()
	for _, p := range e.pending[r.Table] { // abandon half-assembled sharded uploads
		if p.oc != nil {
			e.trackHeld(-ocBytes(p.oc))
		}
	}
	delete(e.pending, r.Table)
	delete(e.storeMarks, r.Table) // and reclaim its attempt marks
	e.pendMu.Unlock()
	if e.opts.Store != nil {
		// Removes live, pending and manifest files alike.
		if err := e.opts.Store.DropTable(r.Table); err != nil {
			return nil, err
		}
	}
	return protocol.DropReply{}, nil
}

// spill writes an owner's columns to disk and drops them from memory.
func (e *Engine) spill(tableName string, owner int, oc *ownerCols) error {
	st := e.opts.Store
	pre := fmt.Sprintf("o%d.", owner)
	if oc.chi != nil {
		if err := st.WriteU16(tableName, pre+"chi", oc.chi); err != nil {
			return err
		}
	}
	if oc.chibar != nil {
		if err := st.WriteU16(tableName, pre+"chibar", oc.chibar); err != nil {
			return err
		}
	}
	for col, v := range oc.sums {
		if err := st.WriteU64(tableName, pre+"sum."+col, v); err != nil {
			return err
		}
	}
	for col, v := range oc.vsums {
		if err := st.WriteU64(tableName, pre+"vsum."+col, v); err != nil {
			return err
		}
	}
	if oc.cnt != nil {
		if err := st.WriteU64(tableName, pre+"cnt", oc.cnt); err != nil {
			return err
		}
	}
	if oc.vcnt != nil {
		if err := st.WriteU64(tableName, pre+"vcnt", oc.vcnt); err != nil {
			return err
		}
	}
	oc.chi, oc.chibar, oc.sums, oc.vsums, oc.cnt, oc.vcnt = nil, nil, nil, nil, nil, nil
	oc.onDisk = true
	return nil
}

// lookup snapshots the table under the engine lock and checks all m
// owners have outsourced. The returned view is safe to read without
// locks: ownerCols are immutable once registered, and later Stores only
// swap map entries, never mutate visible columns.
func (e *Engine) lookup(name string) (*tableView, error) {
	e.mu.RLock()
	t, ok := e.tables[name]
	var v *tableView
	if ok {
		v = &tableView{spec: t.spec, owners: make([]*ownerCols, e.view.M), cache: t.cache, delta: t.delta}
		for j := 0; j < e.view.M; j++ {
			v.owners[j] = t.owners[j] // nil when owner j has not outsourced
		}
	}
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("server %d: unknown table %q", e.view.Index, name)
	}
	for j, oc := range v.owners {
		if oc == nil {
			return nil, fmt.Errorf("server %d: table %q missing owner %d of %d", e.view.Index, name, j, e.view.M)
		}
	}
	return v, nil
}

// ---- column fetch layer ----
//
// Every handler fetches exactly the stored cells its reply window needs:
// contiguous windows via fetch*Window (reading only the chunks that
// overlap the window) and scattered cells — permuted reply windows,
// bucket-tree frontiers — via fetchU16Gather (visiting the touched
// chunks one at a time, so residency stays O(window + chunk)). In-memory
// tables hand out zero-copy slices and report no fetch time; disk reads
// are timed into Stats.FetchNS and served through the per-table
// hot-chunk cache when enabled.

// memU16 resolves an in-memory uint16 column by its layout name.
func memU16(oc *ownerCols, col string) []uint16 {
	switch col {
	case "chi":
		return oc.chi
	case "chibar":
		return oc.chibar
	}
	return nil
}

// memU64 resolves an in-memory uint64 column by its layout name.
func memU64(oc *ownerCols, col string) []uint64 {
	switch {
	case col == "cnt":
		return oc.cnt
	case col == "vcnt":
		return oc.vcnt
	case strings.HasPrefix(col, "sum."):
		return oc.sums[strings.TrimPrefix(col, "sum.")]
	case strings.HasPrefix(col, "vsum."):
		return oc.vsums[strings.TrimPrefix(col, "vsum.")]
	}
	return nil
}

// colInfo reports a disk column's shape, cached per table epoch.
func (e *Engine) colInfo(t *tableView, key string, stats *protocol.Stats) (sharestore.ColumnInfo, error) {
	load := func() (sharestore.ColumnInfo, error) {
		start := time.Now()
		info, err := e.opts.Store.Stat(t.spec.Name, key)
		stats.FetchNS += time.Since(start).Nanoseconds()
		return info, err
	}
	if t.cache != nil {
		return t.cache.getInfo(key, load)
	}
	return load()
}

// chunkSpanU16 returns chunk k of a disk column, via the hot-chunk cache
// when enabled.
func (e *Engine) chunkSpanU16(t *tableView, key string, k uint64, stats *protocol.Stats) ([]uint16, error) {
	load := func() ([]uint16, error) {
		start := time.Now()
		v, err := e.opts.Store.ReadU16Chunk(t.spec.Name, key, k)
		stats.FetchNS += time.Since(start).Nanoseconds()
		return v, err
	}
	if t.cache != nil {
		v, hit, err := t.cache.getU16(key, k, load)
		if hit {
			stats.CacheHits++
			mCacheHits.Inc()
		} else {
			mCacheMisses.Inc()
		}
		return v, err
	}
	return load()
}

// chunkSpanU64 is chunkSpanU16 for uint64 columns.
func (e *Engine) chunkSpanU64(t *tableView, key string, k uint64, stats *protocol.Stats) ([]uint64, error) {
	load := func() ([]uint64, error) {
		start := time.Now()
		v, err := e.opts.Store.ReadU64Chunk(t.spec.Name, key, k)
		stats.FetchNS += time.Since(start).Nanoseconds()
		return v, err
	}
	if t.cache != nil {
		v, hit, err := t.cache.getU64(key, k, load)
		if hit {
			stats.CacheHits++
			mCacheHits.Inc()
		} else {
			mCacheMisses.Inc()
		}
		return v, err
	}
	return load()
}

// fetchU16Window returns owner j's cells [rg.Offset, rg.End()) of a
// uint16 column, with the table's delta overlay merged in. The raw
// fetch reports whether the slice is owned by the caller; shared slices
// (in-memory columns, cached chunks) are cloned only when an overlay
// entry actually lands in the window.
func (e *Engine) fetchU16Window(t *tableView, owner int, col string, rg protocol.Range, stats *protocol.Stats) ([]uint16, error) {
	v, owned, err := e.fetchU16WindowRaw(t, owner, col, rg, stats)
	if err != nil || t.delta == nil {
		return v, err
	}
	start := time.Now()
	v = t.delta.patchU16(colKey(owner, col), rg, v, owned)
	stats.PatchNS += time.Since(start).Nanoseconds()
	return v, nil
}

// fetchU16WindowRaw is the overlay-free window fetch: a zero-copy slice
// for in-memory tables (owned=false), a chunk-ranged read for disk
// tables (owned unless served straight from the chunk cache).
func (e *Engine) fetchU16WindowRaw(t *tableView, owner int, col string, rg protocol.Range, stats *protocol.Stats) ([]uint16, bool, error) {
	oc := t.owners[owner]
	if !oc.onDisk {
		v := memU16(oc, col)
		if v == nil {
			return nil, false, fmt.Errorf("server %d: table %q owner %d missing %s column", e.view.Index, t.spec.Name, owner, col)
		}
		return v[rg.Offset:rg.End()], false, nil
	}
	key := colKey(owner, col)
	if t.cache == nil {
		start := time.Now()
		v, err := e.opts.Store.ReadU16Range(t.spec.Name, key, rg.Offset, rg.Count)
		stats.FetchNS += time.Since(start).Nanoseconds()
		return v, true, err
	}
	info, err := e.colInfo(t, key, stats)
	if err != nil {
		return nil, false, err
	}
	cc := info.ChunkCells
	if rg.Count > 0 && rg.Offset%cc == 0 {
		chunkEnd := rg.Offset + cc
		if chunkEnd > info.Cells {
			chunkEnd = info.Cells
		}
		if rg.End() == chunkEnd {
			// The window is exactly one whole chunk (shard windows
			// aligned to the chunk size): hand out the chunk slice
			// without copying.
			v, err := e.chunkSpanU16(t, key, rg.Offset/cc, stats)
			return v, false, err
		}
	}
	if rg.Offset == 0 && rg.Count == info.Cells && info.NumChunks() > 1 {
		// Whole-column read of a multi-chunk column (monolithic query
		// shapes): cache the assembled column as one entry so warm
		// queries get a zero-copy slice handoff instead of re-joining
		// chunks per query.
		load := func() ([]uint16, error) {
			start := time.Now()
			v, err := e.opts.Store.ReadU16Range(t.spec.Name, key, 0, info.Cells)
			stats.FetchNS += time.Since(start).Nanoseconds()
			return v, err
		}
		v, hit, err := t.cache.getU16(key, fullColumnChunk, load)
		if hit {
			stats.CacheHits++
			mCacheHits.Inc()
		} else {
			mCacheMisses.Inc()
		}
		return v, false, err
	}
	out := make([]uint16, rg.Count)
	if rg.Count == 0 {
		return out, true, nil
	}
	for k := rg.Offset / cc; k*cc < rg.End(); k++ {
		chunk, err := e.chunkSpanU16(t, key, k, stats)
		if err != nil {
			return nil, false, err
		}
		lo, hi := windowOverlap(k*cc, k*cc+uint64(len(chunk)), rg)
		copy(out[lo-rg.Offset:], chunk[lo-k*cc:hi-k*cc])
	}
	return out, true, nil
}

// fetchU64Window is fetchU16Window for uint64 columns (delta overlay
// merged in).
func (e *Engine) fetchU64Window(t *tableView, owner int, col string, rg protocol.Range, stats *protocol.Stats) ([]uint64, error) {
	v, owned, err := e.fetchU64WindowRaw(t, owner, col, rg, stats)
	if err != nil || t.delta == nil {
		return v, err
	}
	start := time.Now()
	v = t.delta.patchU64(colKey(owner, col), rg, v, owned)
	stats.PatchNS += time.Since(start).Nanoseconds()
	return v, nil
}

// fetchU64WindowRaw is fetchU16WindowRaw for uint64 columns.
func (e *Engine) fetchU64WindowRaw(t *tableView, owner int, col string, rg protocol.Range, stats *protocol.Stats) ([]uint64, bool, error) {
	oc := t.owners[owner]
	if !oc.onDisk {
		v := memU64(oc, col)
		if v == nil {
			return nil, false, fmt.Errorf("server %d: owner %d missing %s column", e.view.Index, owner, col)
		}
		return v[rg.Offset:rg.End()], false, nil
	}
	key := colKey(owner, col)
	if t.cache == nil {
		start := time.Now()
		v, err := e.opts.Store.ReadU64Range(t.spec.Name, key, rg.Offset, rg.Count)
		stats.FetchNS += time.Since(start).Nanoseconds()
		return v, true, err
	}
	info, err := e.colInfo(t, key, stats)
	if err != nil {
		return nil, false, err
	}
	cc := info.ChunkCells
	if rg.Count > 0 && rg.Offset%cc == 0 {
		chunkEnd := rg.Offset + cc
		if chunkEnd > info.Cells {
			chunkEnd = info.Cells
		}
		if rg.End() == chunkEnd {
			// Whole-chunk window: no copy (see fetchU16WindowRaw).
			v, err := e.chunkSpanU64(t, key, rg.Offset/cc, stats)
			return v, false, err
		}
	}
	if rg.Offset == 0 && rg.Count == info.Cells && info.NumChunks() > 1 {
		// Whole-column read: one cache entry, zero-copy warm handoff
		// (see fetchU16WindowRaw).
		load := func() ([]uint64, error) {
			start := time.Now()
			v, err := e.opts.Store.ReadU64Range(t.spec.Name, key, 0, info.Cells)
			stats.FetchNS += time.Since(start).Nanoseconds()
			return v, err
		}
		v, hit, err := t.cache.getU64(key, fullColumnChunk, load)
		if hit {
			stats.CacheHits++
			mCacheHits.Inc()
		} else {
			mCacheMisses.Inc()
		}
		return v, false, err
	}
	out := make([]uint64, rg.Count)
	if rg.Count == 0 {
		return out, true, nil
	}
	for k := rg.Offset / cc; k*cc < rg.End(); k++ {
		chunk, err := e.chunkSpanU64(t, key, k, stats)
		if err != nil {
			return nil, false, err
		}
		lo, hi := windowOverlap(k*cc, k*cc+uint64(len(chunk)), rg)
		copy(out[lo-rg.Offset:], chunk[lo-k*cc:hi-k*cc])
	}
	return out, true, nil
}

// windowOverlap intersects chunk cells [clo, chi) with the window rg.
func windowOverlap(clo, chi uint64, rg protocol.Range) (lo, hi uint64) {
	lo, hi = clo, chi
	if lo < rg.Offset {
		lo = rg.Offset
	}
	if hi > rg.End() {
		hi = rg.End()
	}
	return lo, hi
}

// gatherPlan groups scattered cell indices by the chunk that holds
// them, so a gather visits each touched chunk exactly once. order holds
// positions into idx, grouped by chunk; starts[c] is the first position
// of chunk chunks[c] within order. Built in O(n + touched chunks) with
// a counting pass — no comparison sort — and shared across every
// owner's column of the same chunk geometry.
type gatherPlan struct {
	cc     uint64
	chunks []uint64
	starts []int
	order  []int32
}

func buildGatherPlan(idx []uint64, cc, cells uint64) gatherPlan {
	nchunks := int((cells + cc - 1) / cc)
	counts := make([]int, nchunks)
	for _, c := range idx {
		counts[c/cc]++
	}
	chunks := make([]uint64, 0, nchunks)
	starts := make([]int, 1, nchunks+1)
	next := make([]int, nchunks)
	for k, n := range counts {
		if n == 0 {
			continue
		}
		next[k] = starts[len(starts)-1]
		chunks = append(chunks, uint64(k))
		starts = append(starts, next[k]+n)
	}
	order := make([]int32, len(idx))
	for i, cell := range idx {
		k := cell / cc
		order[next[k]] = int32(i)
		next[k]++
	}
	return gatherPlan{cc: cc, chunks: chunks, starts: starts, order: order}
}

// fetchU16Gather returns owner j's cells idx[0..n) of a uint16 column,
// in idx order. Disk tables visit each touched chunk once (per the
// plan), so residency is O(len(idx) + chunk) even when the indices
// scatter across the whole column (permuted reply windows, bucket-tree
// frontiers).
func (e *Engine) fetchU16Gather(t *tableView, owner int, col string, idx []uint64, plan *gatherPlan, stats *protocol.Stats) ([]uint16, error) {
	out, err := e.fetchU16GatherRaw(t, owner, col, idx, plan, stats)
	if err == nil && t.delta != nil {
		// The gathered slice is always freshly built, so the overlay
		// patches it in place.
		start := time.Now()
		t.delta.patchGatherU16(colKey(owner, col), idx, out)
		stats.PatchNS += time.Since(start).Nanoseconds()
	}
	return out, err
}

// fetchU16GatherRaw is the overlay-free gather.
func (e *Engine) fetchU16GatherRaw(t *tableView, owner int, col string, idx []uint64, plan *gatherPlan, stats *protocol.Stats) ([]uint16, error) {
	oc := t.owners[owner]
	out := make([]uint16, len(idx))
	if !oc.onDisk {
		v := memU16(oc, col)
		if v == nil {
			return nil, fmt.Errorf("server %d: table %q owner %d missing %s column", e.view.Index, t.spec.Name, owner, col)
		}
		for i, c := range idx {
			out[i] = v[c]
		}
		return out, nil
	}
	key := colKey(owner, col)
	info, err := e.colInfo(t, key, stats)
	if err != nil {
		return nil, err
	}
	if plan == nil || plan.cc != info.ChunkCells {
		// Mixed chunk geometries across owners (e.g. a half-migrated
		// table): fall back to a column-specific plan.
		p := buildGatherPlan(idx, info.ChunkCells, info.Cells)
		plan = &p
	}
	for c, k := range plan.chunks {
		chunk, err := e.chunkSpanU16(t, key, k, stats)
		if err != nil {
			return nil, err
		}
		lo := k * plan.cc
		for _, i := range plan.order[plan.starts[c]:plan.starts[c+1]] {
			out[i] = chunk[idx[i]-lo]
		}
	}
	return out, nil
}

// chiWindows fetches every owner's χ (bar=false) or χ̄ (bar=true) share
// cells for the stored-cell window rg.
func (e *Engine) chiWindows(t *tableView, bar bool, rg protocol.Range, stats *protocol.Stats) ([][]uint16, error) {
	col := "chi"
	if bar {
		col = "chibar"
	}
	out := make([][]uint16, e.view.M)
	for j := 0; j < e.view.M; j++ {
		v, err := e.fetchU16Window(t, j, col, rg, stats)
		if err != nil {
			return nil, err
		}
		out[j] = v
	}
	return out, nil
}

// chiGather fetches every owner's χ/χ̄ share at the scattered stored
// cells idx, in idx order. The chunk-grouping plan is computed once and
// shared across owners (their columns share the store's chunk
// geometry).
func (e *Engine) chiGather(t *tableView, bar bool, idx []uint64, stats *protocol.Stats) ([][]uint16, error) {
	col := "chi"
	if bar {
		col = "chibar"
	}
	var plan *gatherPlan
	for j := 0; j < e.view.M; j++ {
		if t.owners[j].onDisk {
			info, err := e.colInfo(t, colKey(j, col), stats)
			if err != nil {
				return nil, err
			}
			p := buildGatherPlan(idx, info.ChunkCells, info.Cells)
			plan = &p
			break
		}
	}
	out := make([][]uint16, e.view.M)
	for j := 0; j < e.view.M; j++ {
		v, err := e.fetchU16Gather(t, j, col, idx, plan, stats)
		if err != nil {
			return nil, err
		}
		out[j] = v
	}
	return out, nil
}

// ---- parallel helper ----

// parallel splits [0, n) into contiguous chunks across the worker pool.
// The width is sampled once per loop, so SetThreads during a query is
// race-free and only affects subsequent loops.
func (e *Engine) parallel(n int, fn func(lo, hi int)) {
	threads := int(e.threads.Load())
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ---- sharding helpers ----

// s1Inverse returns PF_s1⁻¹, materialised once: sharded Count/permuted-
// PSU replies are windows of the permuted output vector, so the engine
// maps output positions back to stored cells.
func (e *Engine) s1Inverse() perm.Perm {
	e.s1invOnce.Do(func() { e.s1inv = e.view.S1.Inverse() })
	return e.s1inv
}

// s2Inverse returns PF_s2⁻¹ (verification side of sharded counts).
func (e *Engine) s2Inverse() perm.Perm {
	e.s2invOnce.Do(func() { e.s2inv = e.view.S2.Inverse() })
	return e.s2inv
}

// invWindow materialises the stored-cell indices a server-permuted reply
// window [rg.Offset, rg.End()) maps to: idx[k] = inv[rg.Offset+k].
func invWindow(inv perm.Perm, rg protocol.Range) []uint64 {
	idx := make([]uint64, rg.Count)
	for k := range idx {
		idx[k] = uint64(inv[rg.Offset+uint64(k)])
	}
	return idx
}

// ---- PSI (§5.1 Step 2) ----

// psiVector computes out_i = g^((Σ_j A(x_i)_j ⊖ A(m)) mod δ) mod η' per
// position of the (window-relative) share vectors.
func (e *Engine) psiVector(shares [][]uint16, subtractM bool, stats *protocol.Stats) []uint64 {
	delta := e.view.Delta
	mShare := uint64(0)
	if subtractM {
		mShare = uint64(e.view.MShare) % delta
	}
	start := time.Now()
	n := len(shares[0])
	out := make([]uint64, n)
	e.parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum uint64
			for _, sv := range shares {
				sum += uint64(sv[i])
			}
			e2 := (sum%delta + delta - mShare) % delta
			out[i] = e.powTab[e2]
		}
	})
	stats.ComputeNS += time.Since(start).Nanoseconds()
	stats.Cells += n
	return out
}

func (e *Engine) handlePSI(r protocol.PSIRequest) (any, error) {
	defer e.observeRPC("psi")()
	rpcStart := time.Now()
	if e.view.Index >= 2 {
		return nil, fmt.Errorf("server %d: holds no additive shares", e.view.Index)
	}
	t, err := e.lookup(r.Table)
	if err != nil {
		return nil, err
	}
	var stats protocol.Stats
	if r.Shard.Sharded() {
		if r.Cells != nil {
			return nil, fmt.Errorf("server %d: PSI request mixes a shard range with a cell frontier", e.view.Index)
		}
		if err := r.Shard.Validate(t.spec.B); err != nil {
			return nil, fmt.Errorf("server %d: %w", e.view.Index, err)
		}
		shares, err := e.chiWindows(t, false, r.Shard, &stats)
		if err != nil {
			return nil, err
		}
		out := e.psiVector(shares, true, &stats)
		e.finishQuery("psi", r.TraceID, rpcStart, &stats)
		return protocol.PSIReply{Out: out, Stats: stats}, nil
	}
	if r.Cells != nil {
		// Bucket-tree frontier (§6.6): scattered cells, gathered so only
		// the chunks the frontier touches are read.
		idx := make([]uint64, len(r.Cells))
		for i, c := range r.Cells {
			if uint64(c) >= t.spec.B {
				return nil, fmt.Errorf("server %d: cell %d out of range", e.view.Index, c)
			}
			idx[i] = uint64(c)
		}
		shares, err := e.chiGather(t, false, idx, &stats)
		if err != nil {
			return nil, err
		}
		out := e.psiVector(shares, true, &stats)
		e.finishQuery("psi", r.TraceID, rpcStart, &stats)
		return protocol.PSIReply{Out: out, Stats: stats}, nil
	}
	shares, err := e.chiWindows(t, false, protocol.Range{Offset: 0, Count: t.spec.B}, &stats)
	if err != nil {
		return nil, err
	}
	out := e.psiVector(shares, true, &stats)
	e.finishQuery("psi", r.TraceID, rpcStart, &stats)
	return protocol.PSIReply{Out: out, Stats: stats}, nil
}

// ---- PSI verification (§5.2 Step 2, Equation 7) ----

func (e *Engine) handlePSIVerify(r protocol.PSIVerifyRequest) (any, error) {
	defer e.observeRPC("psiverify")()
	rpcStart := time.Now()
	if e.view.Index >= 2 {
		return nil, fmt.Errorf("server %d: holds no additive shares", e.view.Index)
	}
	t, err := e.lookup(r.Table)
	if err != nil {
		return nil, err
	}
	if !t.spec.HasVerify {
		return nil, fmt.Errorf("server %d: table %q outsourced without verification columns", e.view.Index, r.Table)
	}
	rg := protocol.Range{Offset: 0, Count: t.spec.B}
	if r.Shard.Sharded() {
		if err := r.Shard.Validate(t.spec.B); err != nil {
			return nil, fmt.Errorf("server %d: %w", e.view.Index, err)
		}
		rg = r.Shard
	}
	var stats protocol.Stats
	shares, err := e.chiWindows(t, true, rg, &stats)
	if err != nil {
		return nil, err
	}
	// No ⊖A(m) on the verification side (Equation 7).
	out := e.psiVector(shares, false, &stats)
	e.finishQuery("psiverify", r.TraceID, rpcStart, &stats)
	return protocol.PSIVerifyReply{Vout: out, Stats: stats}, nil
}

// ---- PSI count (§6.5) ----

func (e *Engine) handleCount(r protocol.CountRequest) (any, error) {
	defer e.observeRPC("count")()
	rpcStart := time.Now()
	if e.view.Index >= 2 {
		return nil, fmt.Errorf("server %d: holds no additive shares", e.view.Index)
	}
	t, err := e.lookup(r.Table)
	if err != nil {
		return nil, err
	}
	if t.spec.Plain {
		return nil, fmt.Errorf("server %d: count needs a permuted table", e.view.Index)
	}
	var stats protocol.Stats
	if r.Shard.Sharded() {
		// The window indexes the PF_s1-permuted output vector, so the
		// engine evaluates the stored cells PF_s1⁻¹ maps it to — gathered
		// chunk by chunk; Out and Vout windows at the same offsets stay
		// aligned (Eq. 1).
		if err := r.Shard.Validate(t.spec.B); err != nil {
			return nil, fmt.Errorf("server %d: %w", e.view.Index, err)
		}
		shares, err := e.chiGather(t, false, invWindow(e.s1Inverse(), r.Shard), &stats)
		if err != nil {
			return nil, err
		}
		reply := protocol.CountReply{Out: e.psiVector(shares, true, &stats)}
		if r.Verify {
			if !t.spec.HasVerify {
				return nil, fmt.Errorf("server %d: table %q lacks verification columns", e.view.Index, r.Table)
			}
			vshares, err := e.chiGather(t, true, invWindow(e.s2Inverse(), r.Shard), &stats)
			if err != nil {
				return nil, err
			}
			reply.Vout = e.psiVector(vshares, false, &stats)
		}
		e.finishQuery("count", r.TraceID, rpcStart, &stats)
		reply.Stats = stats
		return reply, nil
	}
	full := protocol.Range{Offset: 0, Count: t.spec.B}
	shares, err := e.chiWindows(t, false, full, &stats)
	if err != nil {
		return nil, err
	}
	raw := e.psiVector(shares, true, &stats)
	start := time.Now()
	out := perm.Apply(e.view.S1, raw, nil) // hide positions from owners
	stats.ComputeNS += time.Since(start).Nanoseconds()

	reply := protocol.CountReply{Out: out}
	if r.Verify {
		if !t.spec.HasVerify {
			return nil, fmt.Errorf("server %d: table %q lacks verification columns", e.view.Index, r.Table)
		}
		vshares, err := e.chiWindows(t, true, full, &stats)
		if err != nil {
			return nil, err
		}
		vraw := e.psiVector(vshares, false, &stats)
		start = time.Now()
		reply.Vout = perm.Apply(e.view.S2, vraw, nil) // aligned under PF_i (Eq. 1)
		stats.ComputeNS += time.Since(start).Nanoseconds()
	}
	e.finishQuery("count", r.TraceID, rpcStart, &stats)
	reply.Stats = stats
	return reply, nil
}

// ---- PSU (§7, Equation 18) ----

func (e *Engine) handlePSU(r protocol.PSURequest) (any, error) {
	defer e.observeRPC("psu")()
	rpcStart := time.Now()
	if e.view.Index >= 2 {
		return nil, fmt.Errorf("server %d: holds no additive shares", e.view.Index)
	}
	t, err := e.lookup(r.Table)
	if err != nil {
		return nil, err
	}
	var stats protocol.Stats
	if r.Shard.Sharded() {
		if err := r.Shard.Validate(t.spec.B); err != nil {
			return nil, fmt.Errorf("server %d: %w", e.view.Index, err)
		}
		var shares [][]uint16
		if r.Permute {
			// The window indexes the PF_s1-permuted output; masks are
			// derived per output position ("psup" label) so both servers
			// agree without streaming past scattered stored cells, which
			// are gathered chunk by chunk.
			shares, err = e.chiGather(t, false, invWindow(e.s1Inverse(), r.Shard), &stats)
		} else {
			shares, err = e.chiWindows(t, false, r.Shard, &stats)
		}
		if err != nil {
			return nil, err
		}
		label := "psu"
		if r.Permute {
			label = "psup"
		}
		out := e.psuMasked(shares, r.Shard, r.QueryID, label, &stats)
		e.finishQuery("psu", r.TraceID, rpcStart, &stats)
		return protocol.PSUReply{Out: out, Stats: stats}, nil
	}
	full := protocol.Range{Offset: 0, Count: t.spec.B}
	shares, err := e.chiWindows(t, false, full, &stats)
	if err != nil {
		return nil, err
	}
	out := e.psuMasked(shares, full, r.QueryID, "psu", &stats)
	if r.Permute {
		start := time.Now()
		out = perm.Apply(e.view.S1, out, nil)
		stats.ComputeNS += time.Since(start).Nanoseconds()
	}
	e.finishQuery("psu", r.TraceID, rpcStart, &stats)
	return protocol.PSUReply{Out: out, Stats: stats}, nil
}

// psuMasked computes masked PSU sums for the window rg of one reply
// vector; the share vectors are window-relative (position k of the reply
// reads shares[j][k-rg.Offset]). Masks are derived per fixed-size block
// of positions from the shared seed, the query id and label, so both
// servers produce identical rand[] regardless of thread counts or shard
// boundaries; boundary blocks fast-forward their stream to the window's
// first position, which makes a sharded stored-order reply agree cell
// for cell with the monolithic one (same "psu" streams).
func (e *Engine) psuMasked(shares [][]uint16, rg protocol.Range, qid, label string, stats *protocol.Stats) []uint16 {
	delta := e.view.Delta
	out := make([]uint16, rg.Count)
	if rg.Count == 0 {
		return out // zero-cell table: rg.End()-1 below would wrap
	}
	start := time.Now()
	firstBlk := int(rg.Offset / psuBlock)
	lastBlk := int((rg.End() - 1) / psuBlock)
	e.parallel(lastBlk-firstBlk+1, func(blo, bhi int) {
		for bk := blo; bk < bhi; bk++ {
			blk := firstBlk + bk
			blkStart := uint64(blk) * psuBlock
			lo, hi := blkStart, blkStart+psuBlock
			if lo < rg.Offset {
				lo = rg.Offset
			}
			if hi > rg.End() {
				hi = rg.End()
			}
			g := prg.New(e.view.PSUSeed.Derive(fmt.Sprintf("%s/%s/%d", label, qid, blk)))
			for skip := blkStart; skip < lo; skip++ {
				g.Range1(delta) // fast-forward the block stream to lo
			}
			for k := lo; k < hi; k++ {
				var sum uint64
				for _, sv := range shares {
					sum += uint64(sv[k-rg.Offset])
				}
				mask := g.Range1(delta)
				out[k-rg.Offset] = uint16(sum % delta * mask % delta)
			}
		}
	})
	stats.ComputeNS += time.Since(start).Nanoseconds()
	stats.Cells += int(rg.Count)
	return out
}

// ---- aggregation round 2 (§6.1 Step 4, Equation 11) ----

func (e *Engine) handleAgg(r protocol.AggRequest) (any, error) {
	defer e.observeRPC("agg")()
	rpcStart := time.Now()
	t, err := e.lookup(r.Table)
	if err != nil {
		return nil, err
	}
	rg := protocol.Range{Offset: 0, Count: t.spec.B}
	if r.Shard.Sharded() {
		if err := r.Shard.Validate(t.spec.B); err != nil {
			return nil, fmt.Errorf("server %d: %w", e.view.Index, err)
		}
		rg = r.Shard
	}
	if uint64(len(r.Z)) != rg.Count {
		return nil, fmt.Errorf("server %d: selector length %d != %d cells", e.view.Index, len(r.Z), rg.Count)
	}
	verify := r.VZ != nil
	if verify {
		if !t.spec.HasVerify {
			return nil, fmt.Errorf("server %d: table %q lacks verification columns", e.view.Index, r.Table)
		}
		if uint64(len(r.VZ)) != rg.Count {
			return nil, fmt.Errorf("server %d: v-selector length mismatch", e.view.Index)
		}
	}
	var stats protocol.Stats
	reply := protocol.AggReply{Sums: make(map[string][]uint64)}
	if verify {
		reply.VSums = make(map[string][]uint64)
	}

	for _, col := range r.Cols {
		acc, err := e.sumColumn(t, "sum."+col, r.Z, rg, &stats)
		if err != nil {
			return nil, err
		}
		reply.Sums[col] = acc
		if verify {
			vacc, err := e.sumColumn(t, "vsum."+col, r.VZ, rg, &stats)
			if err != nil {
				return nil, err
			}
			reply.VSums[col] = vacc
		}
	}
	if r.WithCount {
		if !t.spec.HasCount {
			return nil, fmt.Errorf("server %d: table %q has no count column", e.view.Index, r.Table)
		}
		acc, err := e.sumColumn(t, "cnt", r.Z, rg, &stats)
		if err != nil {
			return nil, err
		}
		reply.Counts = acc
		if verify {
			vacc, err := e.sumColumn(t, "vcnt", r.VZ, rg, &stats)
			if err != nil {
				return nil, err
			}
			reply.VCounts = vacc
		}
	}
	e.finishQuery("agg", r.TraceID, rpcStart, &stats)
	reply.Stats = stats
	return reply, nil
}

// sumColumn computes acc_i = S(z_i) · Σ_j S(col_i)_j over all owners for
// the stored cells in rg — the linear rearrangement of Equation 11
// (servers multiply the selector share into the summed column shares;
// degree rises to 2). z is parallel to the window, not the full column;
// only the chunks overlapping the window are fetched.
func (e *Engine) sumColumn(t *tableView, col string, z []uint64, rg protocol.Range, stats *protocol.Stats) ([]uint64, error) {
	cols := make([][]uint64, 0, e.view.M)
	for j := 0; j < e.view.M; j++ {
		v, err := e.fetchU64Window(t, j, col, rg, stats)
		if err != nil {
			return nil, err
		}
		cols = append(cols, v)
	}
	n := int(rg.Count)
	acc := make([]uint64, n)
	start := time.Now()
	e.parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s field.Elem
			for _, cv := range cols {
				s = field.Add(s, cv[i])
			}
			acc[i] = field.Mul(s, z[i])
		}
	})
	stats.ComputeNS += time.Since(start).Nanoseconds()
	stats.Cells += n
	return acc, nil
}

// ---- max/min/median transport (§6.3 Step 4) ----

func (e *Engine) handleExtremeSubmit(ctx context.Context, r protocol.ExtremeSubmitRequest) (any, error) {
	defer e.observeRPC("extremesubmit")()
	if e.view.Index >= 2 {
		return nil, fmt.Errorf("server %d: not an additive-share server", e.view.Index)
	}
	if r.Owner < 0 || r.Owner >= e.view.M {
		return nil, fmt.Errorf("server %d: owner %d out of range", e.view.Index, r.Owner)
	}
	sess := e.session(r.QueryID)
	sess.mu.Lock()
	if sess.ext == nil {
		sess.ext = &extremeState{kind: r.Kind, shares: make([][]byte, e.view.M)}
	}
	st := sess.ext
	if st.kind != r.Kind {
		sess.mu.Unlock()
		return nil, fmt.Errorf("server %d: query %q kind mismatch", e.view.Index, r.QueryID)
	}
	if st.shares[r.Owner] == nil {
		st.shares[r.Owner] = r.VShare
		st.got++
	}
	complete := st.got == e.view.M && !st.forwarded
	if complete {
		st.forwarded = true
	}
	kind := st.kind
	var permuted [][]byte
	if complete {
		// input[i] ← A(v)_i ; output ← PF(input)  (§6.3 Step 4)
		permuted = make([][]byte, e.view.M)
		for i, s := range st.shares {
			permuted[e.view.PF.Image(i)] = s
		}
	}
	sess.mu.Unlock()

	if complete {
		if e.opts.Caller == nil || e.opts.AnnouncerAddr == "" {
			return nil, fmt.Errorf("server %d: no announcer configured", e.view.Index)
		}
		_, err := e.opts.Caller.Call(ctx, e.opts.AnnouncerAddr, protocol.AnnounceRequest{
			QueryID:   r.QueryID,
			Kind:      kind,
			ServerIdx: e.view.Index,
			Shares:    permuted,
		})
		if err != nil {
			return nil, fmt.Errorf("server %d: forwarding to announcer: %w", e.view.Index, err)
		}
	}
	return protocol.ExtremeSubmitReply{Forwarded: complete}, nil
}

func (e *Engine) handleExtremeFetch(ctx context.Context, r protocol.ExtremeFetchRequest) (any, error) {
	defer e.observeRPC("extremefetch")()
	rpcStart := time.Now()
	sess, ok := e.peekSession(r.QueryID)
	if !ok {
		return nil, fmt.Errorf("server %d: unknown extreme query %q", e.view.Index, r.QueryID)
	}
	sess.mu.Lock()
	st := sess.ext
	cached := st != nil && st.result != nil
	var res protocol.AnnounceFetchReply
	if cached {
		res = *st.result
	}
	sess.mu.Unlock()
	if st == nil {
		return nil, fmt.Errorf("server %d: unknown extreme query %q", e.view.Index, r.QueryID)
	}
	var spans []protocol.Span
	if !cached {
		reply, err := e.opts.Caller.Call(ctx, e.opts.AnnouncerAddr, protocol.AnnounceFetchRequest{
			QueryID: r.QueryID, ServerIdx: e.view.Index,
		})
		spans = e.announcerWaitSpan(r.TraceID, rpcStart)
		if err != nil {
			return nil, err
		}
		af, okT := reply.(protocol.AnnounceFetchReply)
		if !okT {
			return nil, fmt.Errorf("server %d: unexpected announcer reply %T", e.view.Index, reply)
		}
		if !af.Ready {
			return protocol.ExtremeFetchReply{Ready: false}, nil
		}
		sess.mu.Lock()
		st.result = &af
		sess.mu.Unlock()
		res = af
	}
	return protocol.ExtremeFetchReply{
		Ready:       true,
		ValueShares: res.ValueShares,
		IndexShare:  res.IndexShare,
		HasIndex:    res.HasIndex,
		Spans:       spans,
	}, nil
}

// ---- identity round (§6.3 Steps 5b-6) ----

func (e *Engine) handleClaimSubmit(r protocol.ClaimSubmitRequest) (any, error) {
	defer e.observeRPC("claimsubmit")()
	if e.view.Index >= 2 {
		return nil, fmt.Errorf("server %d: not an additive-share server", e.view.Index)
	}
	if r.Owner < 0 || r.Owner >= e.view.M {
		return nil, fmt.Errorf("server %d: owner %d out of range", e.view.Index, r.Owner)
	}
	sess := e.session(r.QueryID)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.claim == nil {
		sess.claim = &claimState{fpos: make([]uint16, e.view.M), got: make(map[int]bool)}
	}
	st := sess.claim
	if !st.got[r.Owner] {
		st.fpos[r.Owner] = r.Share // fpos[i] ← A(α)_i (§6.3 Step 6)
		st.got[r.Owner] = true
	}
	return protocol.ClaimSubmitReply{}, nil
}

func (e *Engine) handleClaimFetch(r protocol.ClaimFetchRequest) (any, error) {
	defer e.observeRPC("claimfetch")()
	sess, ok := e.peekSession(r.QueryID)
	if !ok {
		return protocol.ClaimFetchReply{Ready: false}, nil
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st := sess.claim
	if st == nil || len(st.got) < e.view.M {
		return protocol.ClaimFetchReply{Ready: false}, nil
	}
	fpos := make([]uint16, len(st.fpos))
	copy(fpos, st.fpos)
	return protocol.ClaimFetchReply{Ready: true, Fpos: fpos}, nil
}
