package serverengine

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"prism/internal/prg"
	"prism/internal/protocol"
	"prism/internal/share"
	"prism/internal/sharestore"
)

// diskEngines builds three disk-backed engines with small chunks so
// multi-chunk behaviour is exercised at test scale.
func diskEngines(t *testing.T, b uint64, chunkCells uint64, opt func(o *Options)) ([]*Engine, []*sharestore.Store) {
	t.Helper()
	stores := make([]*sharestore.Store, 3)
	engines := newEngines(t, b, func(phi int) Options {
		st, err := sharestore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		st.SetChunkCells(chunkCells)
		stores[phi] = st
		o := Options{Threads: 2, Store: st, DiskBacked: true}
		if opt != nil {
			opt(&o)
		}
		return o
	})
	return engines, stores
}

// storeSharded uploads the same 2-owner table as storeFull but window by
// window (sharded wire mode), returning the plain per-cell sums.
func storeSharded(t *testing.T, engines []*Engine, b, shard uint64, verify bool) [][]uint64 {
	t.Helper()
	g := prg.New(prg.SeedFromString("store-full")) // same data as storeFull
	m := 2
	spec := protocol.TableSpec{
		Name: "t", B: b, AggCols: []string{"v"},
		HasVerify: verify, HasCount: true, Plain: true,
	}
	plainSums := make([][]uint64, m)
	for owner := 0; owner < m; owner++ {
		chi := make([]uint16, b)
		sums := make([]uint64, b)
		counts := make([]uint64, b)
		for i := range chi {
			chi[i] = uint16(g.Uint64n(2))
			if chi[i] == 1 {
				sums[i] = g.Uint64n(100)
				counts[i] = 1 + g.Uint64n(3)
			}
		}
		plainSums[owner] = sums
		chiShares := share.AdditiveSplitVector(g, chi, 113, 2)
		barShares := share.AdditiveSplitVector(g, complement(chi), 113, 2)
		sumShares := share.ShamirSplitVector(g, sums, 1, 3)
		cntShares := share.ShamirSplitVector(g, counts, 1, 3)
		uploadID := fmt.Sprintf("test-epoch/%d", owner+1)
		for off := uint64(0); off < b; off += shard {
			n := shard
			if b-off < n {
				n = b - off
			}
			lo, hi := off, off+n
			for phi, e := range engines {
				req := protocol.StoreRequest{
					Owner: owner, Spec: spec,
					Shard:    protocol.Range{Offset: off, Count: n},
					UploadID: uploadID,
					SumCols:  map[string][]uint64{"v": sumShares[phi][lo:hi]},
					CountCol: cntShares[phi][lo:hi],
				}
				if verify {
					req.VSumCols = map[string][]uint64{"v": sumShares[phi][lo:hi]}
					req.VCountCol = cntShares[phi][lo:hi]
				}
				if phi < 2 {
					req.ChiAdd = chiShares[phi][lo:hi]
					if verify {
						req.ChiBarAdd = barShares[phi][lo:hi]
					}
				}
				if _, err := e.Handle(context.Background(), req); err != nil {
					t.Fatalf("owner %d shard [%d,%d) server %d: %v", owner, lo, hi, phi, err)
				}
			}
		}
	}
	return plainSums
}

// TestStreamingShardedUploadMatchesMonolithic: a disk-backed sharded
// upload streams windows straight to chunked columns — no full-length
// RAM assembly — and yields byte-identical query replies to the same
// data stored monolithically in RAM.
func TestStreamingShardedUploadMatchesMonolithic(t *testing.T) {
	const b = 96
	ram := newEngines(t, b, nil)
	storeFull(t, ram, b, true)

	engines, stores := diskEngines(t, b, 16, nil)
	storeSharded(t, engines, b, 10, true)

	ctx := context.Background()
	for _, req := range []any{
		protocol.PSIRequest{Table: "t", QueryID: "q"},
		protocol.PSIRequest{Table: "t", QueryID: "q", Shard: protocol.Range{Offset: 30, Count: 17}},
		protocol.PSIVerifyRequest{Table: "t", QueryID: "q", Shard: protocol.Range{Offset: 8, Count: 64}},
		protocol.PSURequest{Table: "t", QueryID: "q"},
		protocol.PSURequest{Table: "t", QueryID: "q", Shard: protocol.Range{Offset: 16, Count: 48}},
	} {
		want, err := ram[0].Handle(ctx, req)
		if err != nil {
			t.Fatalf("ram %T: %v", req, err)
		}
		got, err := engines[0].Handle(ctx, req)
		if err != nil {
			t.Fatalf("disk %T: %v", req, err)
		}
		stripStats := func(v any) any {
			switch r := v.(type) {
			case protocol.PSIReply:
				r.Stats = protocol.Stats{}
				return r
			case protocol.PSIVerifyReply:
				r.Stats = protocol.Stats{}
				return r
			case protocol.PSUReply:
				r.Stats = protocol.Stats{}
				return r
			}
			return v
		}
		if !reflect.DeepEqual(stripStats(want), stripStats(got)) {
			t.Fatalf("%T diverged between RAM-monolithic and disk-streamed", req)
		}
	}

	// No RAM assembly: the streamed upload must never have held a
	// full-length column set in memory.
	for phi, e := range engines {
		if peak := e.PeakHeldBytes(); peak != 0 {
			t.Errorf("server %d: streamed upload held %d bytes in RAM", phi, peak)
		}
		if e.PendingUploads() != 0 {
			t.Errorf("server %d: pending uploads remain", phi)
		}
	}
	// Live columns are chunked; pending names are gone; the manifest
	// records both owners.
	st := stores[0]
	info, err := st.Stat("t", "o0.chi")
	if err != nil || !info.Chunked || info.Cells != b || info.ChunkCells != 16 {
		t.Fatalf("o0.chi info = %+v, err %v", info, err)
	}
	if st.HasColumn("t", "pend0.chi") {
		t.Error("pending column survived completion")
	}
	var man TableManifest
	if err := st.ReadManifest("t", &man); err != nil {
		t.Fatal(err)
	}
	if man.Spec.B != b || len(man.Owners) != 2 || man.Owners[0] != 0 || man.Owners[1] != 1 {
		t.Fatalf("manifest = %+v", man)
	}
}

// TestPendingUploadTTLSweep: a stale sharded-upload assembly (owner
// crashed mid-upload) is reclaimed after the TTL — RAM buffers and
// pending disk columns both — and a fresh retry then succeeds.
func TestPendingUploadTTLSweep(t *testing.T) {
	const b = 64
	for _, disk := range []bool{false, true} {
		name := map[bool]string{false: "ram", true: "disk"}[disk]
		t.Run(name, func(t *testing.T) {
			var engines []*Engine
			var stores []*sharestore.Store
			if disk {
				engines, stores = diskEngines(t, b, 16, func(o *Options) { o.PendingTTL = time.Hour })
			} else {
				engines = newEngines(t, b, func(phi int) Options {
					return Options{Threads: 2, PendingTTL: time.Hour}
				})
			}
			e := engines[0]
			spec := protocol.TableSpec{Name: "t", B: b, Plain: true}
			half := make([]uint16, b/2)

			// First shard of an attempt that never completes.
			_, err := e.Handle(context.Background(), protocol.StoreRequest{
				Owner: 0, Spec: spec, UploadID: "crashed/1",
				Shard: protocol.Range{Offset: 0, Count: b / 2}, ChiAdd: half,
			})
			if err != nil {
				t.Fatal(err)
			}
			if e.PendingUploads() != 1 {
				t.Fatalf("pending = %d, want 1", e.PendingUploads())
			}
			if !disk && e.HeldBytes() == 0 {
				t.Error("ram assembly not accounted")
			}

			// Not yet stale: nothing swept.
			if n := e.sweepPending(time.Now()); n != 0 {
				t.Fatalf("fresh assembly swept (%d)", n)
			}
			// Past the TTL: reclaimed.
			if n := e.sweepPending(time.Now().Add(2 * time.Hour)); n != 1 {
				t.Fatalf("swept %d assemblies, want 1", n)
			}
			if e.PendingUploads() != 0 {
				t.Error("stale assembly survives sweep")
			}
			if e.HeldBytes() != 0 {
				t.Errorf("held bytes = %d after sweep, want 0", e.HeldBytes())
			}
			if disk && stores[0].HasColumn("t", "pend0.chi") {
				t.Error("pending disk column survives sweep")
			}

			// A fresh retry (new attempt id) completes cleanly.
			for _, rg := range []protocol.Range{{Offset: 0, Count: b / 2}, {Offset: b / 2, Count: b / 2}} {
				_, err := e.Handle(context.Background(), protocol.StoreRequest{
					Owner: 0, Spec: spec, UploadID: "crashed/2",
					Shard: rg, ChiAdd: make([]uint16, rg.Count),
				})
				if err != nil {
					t.Fatalf("retry shard [%d,%d): %v", rg.Offset, rg.End(), err)
				}
			}
			// Second owner completes monolithically; the table then serves.
			if _, err := e.Handle(context.Background(), protocol.StoreRequest{
				Owner: 1, Spec: spec, ChiAdd: make([]uint16, b),
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Handle(context.Background(), protocol.PSIRequest{Table: "t", QueryID: "q"}); err != nil {
				t.Fatalf("PSI after retry: %v", err)
			}
		})
	}
}

// TestPendingUploadSweepIdleNotAge: the TTL sweep measures idle time
// since the last window landed, not the age of the assembly. A
// slow-but-live writer whose upload takes longer than the TTL overall,
// but whose inter-window gaps stay under it, must survive the sweep and
// complete.
func TestPendingUploadSweepIdleNotAge(t *testing.T) {
	const b = 96
	const ttl = 500 * time.Millisecond
	engines := newEngines(t, b, func(phi int) Options {
		return Options{Threads: 2, PendingTTL: ttl}
	})
	e := engines[0]
	spec := protocol.TableSpec{Name: "t", B: b, Plain: true}
	windows := []protocol.Range{{Offset: 0, Count: 32}, {Offset: 32, Count: 32}, {Offset: 64, Count: 32}}
	for i, rg := range windows[:2] {
		if i > 0 {
			time.Sleep(350 * time.Millisecond) // gap < ttl, cumulative age > ttl
		}
		if _, err := e.Handle(context.Background(), protocol.StoreRequest{
			Owner: 0, Spec: spec, UploadID: "slow/1",
			Shard: rg, ChiAdd: make([]uint16, rg.Count),
		}); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
	}
	time.Sleep(350 * time.Millisecond)
	// The assembly is ~700ms old — past the TTL — but only ~350ms idle.
	if n := e.sweepPending(time.Now()); n != 0 {
		t.Fatalf("live slow upload swept (%d assemblies)", n)
	}
	if e.PendingUploads() != 1 {
		t.Fatalf("pending = %d, want 1", e.PendingUploads())
	}
	// The writer finishes; the assembly retires cleanly.
	if _, err := e.Handle(context.Background(), protocol.StoreRequest{
		Owner: 0, Spec: spec, UploadID: "slow/1",
		Shard: windows[2], ChiAdd: make([]uint16, windows[2].Count),
	}); err != nil {
		t.Fatal(err)
	}
	if e.PendingUploads() != 0 {
		t.Error("pending assembly survives completion")
	}
}

// TestChunkCacheBudget: with a byte budget smaller than the table, the
// cache evicts LRU chunks — resident cache bytes stay within budget —
// while query results remain correct.
func TestChunkCacheBudget(t *testing.T) {
	const b, chunk = 256, 32
	const budget = 4 * chunk * 2 // 4 uint16 chunks of the 8 per column
	engines, _ := diskEngines(t, b, chunk, func(o *Options) {
		o.CacheColumns = true
		o.CacheBytes = budget
	})
	storeSharded(t, engines, b, 64, false)
	e := engines[0]

	base, err := e.Handle(context.Background(), protocol.PSIRequest{Table: "t", QueryID: "q0"})
	if err != nil {
		t.Fatal(err)
	}
	// Sweep shard windows repeatedly; the budget must hold throughout.
	for i := 0; i < 4; i++ {
		for off := uint64(0); off < b; off += 64 {
			r, err := e.Handle(context.Background(), protocol.PSIRequest{
				Table: "t", QueryID: fmt.Sprintf("q%d-%d", i, off),
				Shard: protocol.Range{Offset: off, Count: 64},
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := r.(protocol.PSIReply)
			want := base.(protocol.PSIReply).Out[off : off+64]
			if !reflect.DeepEqual(rep.Out, want) {
				t.Fatalf("window [%d,%d) diverged under eviction", off, off+64)
			}
		}
		e.mu.RLock()
		cache := e.tables["t"].cache
		e.mu.RUnlock()
		if got := cache.Bytes(); got > budget {
			t.Fatalf("cache holds %d bytes, budget %d", got, budget)
		}
	}
	// Held-bytes gauge reflects the bounded cache, not the column sizes.
	if held := e.HeldBytes(); held > budget {
		t.Errorf("held bytes %d exceed cache budget %d", held, budget)
	}
}

// TestHeldBytesLifecycle: the gauge covers in-memory tables across
// store, re-store and drop.
func TestHeldBytesLifecycle(t *testing.T) {
	const b = 64
	engines := newEngines(t, b, nil)
	storeFull(t, engines, b, false)
	e := engines[0]
	// server 0 holds per owner: chi (2b) + sum (8b) + cnt (8b).
	want := int64(2) * (2*b + 8*b + 8*b)
	if got := e.HeldBytes(); got != want {
		t.Fatalf("held = %d, want %d", got, want)
	}
	if e.PeakHeldBytes() < want {
		t.Fatalf("peak = %d < held %d", e.PeakHeldBytes(), want)
	}
	// Re-store (same shape) must not double-count.
	storeFull(t, engines, b, false)
	if got := e.HeldBytes(); got != want {
		t.Fatalf("held after re-store = %d, want %d", got, want)
	}
	if _, err := e.Handle(context.Background(), protocol.DropRequest{Table: "t"}); err != nil {
		t.Fatal(err)
	}
	if got := e.HeldBytes(); got != 0 {
		t.Fatalf("held after drop = %d, want 0", got)
	}
}
