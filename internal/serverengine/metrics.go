package serverengine

import (
	"fmt"
	"time"

	"prism/internal/protocol"
	"prism/internal/telemetry"
)

// Package-level metric handles, registered once at init in the
// process-global telemetry registry. Names come from the telemetry
// name table only (the metricnames prism-vet analyzer enforces this),
// so the full series inventory of a server binary is auditable from
// internal/telemetry/names.go.
var (
	mRPCSeconds        = telemetry.NewHistogramVec(telemetry.MetricRPCSeconds, "type", telemetry.LatencyBuckets)
	mQueries           = telemetry.NewCounterVec(telemetry.MetricQueries, "type")
	mCells             = telemetry.NewCounter(telemetry.MetricCellsProcessed)
	mCacheHits         = telemetry.NewCounter(telemetry.MetricCacheHits)
	mCacheMisses       = telemetry.NewCounter(telemetry.MetricCacheMisses)
	mCacheEvictions    = telemetry.NewCounter(telemetry.MetricCacheEvictions)
	mCompactions       = telemetry.NewCounter(telemetry.MetricCompactions)
	mCompactionSeconds = telemetry.NewHistogram(telemetry.MetricCompactionSeconds, telemetry.LatencyBuckets)
	mCompactionEntries = telemetry.NewCounter(telemetry.MetricCompactionEntries)
	mDeltaBacklog      = telemetry.NewGaugeVec(telemetry.MetricDeltaBacklog, "table")
	mPendingSweeps     = telemetry.NewCounter(telemetry.MetricPendingSweeps)
	mPendingReclaimed  = telemetry.NewCounter(telemetry.MetricPendingReclaimed)
	mHeldBytes         = telemetry.NewGaugeVec(telemetry.MetricHeldBytes, "site")
	mPeakHeldBytes     = telemetry.NewGaugeVec(telemetry.MetricPeakHeldBytes, "site")
)

// observeRPC starts the latency clock for one request handler; the
// returned func records the elapsed time under the message-type label.
// Every exported *Request handler defers one of these — the metricnames
// analyzer fails prism-vet on a handler that forgets.
func (e *Engine) observeRPC(typ string) func() {
	start := time.Now()
	return func() { mRPCSeconds.Observe(typ, time.Since(start).Seconds()) }
}

// site is this engine's span/gauge site label: group and server index,
// matching the multi-group address scheme ("g0/s1" is g0/server/1).
func (e *Engine) site() string {
	return fmt.Sprintf("g%d/s%d", e.opts.Group, e.view.Index)
}

// finishQuery closes out one query handler: bumps the per-type query
// and processed-cells counters and — for traced requests — converts the
// handler-local stat accumulators into per-phase spans stamped with
// this server's site, appended to st.Spans so they ride the reply's
// Stats back to the owner. Phase spans share the handler's start time:
// fetch/patch/compute interleave per column within a handler, so the
// accumulated durations are the truthful shape, not a sequential
// sub-timeline.
// announcerWaitSpan is the span a traced ExtremeFetch attaches for the
// time it spent polling S_a (nil for untraced queries, so the reply
// field stays gob-absent).
func (e *Engine) announcerWaitSpan(traceID string, start time.Time) []protocol.Span {
	if traceID == "" || !telemetry.Enabled() {
		return nil
	}
	return []protocol.Span{{
		Name: "server:announcer-wait", Site: e.site(),
		StartNS: start.UnixNano(), DurNS: time.Since(start).Nanoseconds(),
	}}
}

func (e *Engine) finishQuery(typ, traceID string, start time.Time, st *protocol.Stats) {
	mQueries.Inc(typ)
	mCells.Add(int64(st.Cells))
	if traceID == "" || !telemetry.Enabled() {
		return
	}
	site := e.site()
	base := start.UnixNano()
	st.Spans = append(st.Spans, protocol.Span{Name: "server:rpc:" + typ, Site: site, StartNS: base, DurNS: time.Since(start).Nanoseconds()})
	if st.FetchNS > 0 {
		st.Spans = append(st.Spans, protocol.Span{Name: "server:fetch", Site: site, StartNS: base, DurNS: st.FetchNS})
	}
	if st.PatchNS > 0 {
		st.Spans = append(st.Spans, protocol.Span{Name: "server:patch", Site: site, StartNS: base, DurNS: st.PatchNS})
	}
	if st.ComputeNS > 0 {
		st.Spans = append(st.Spans, protocol.Span{Name: "server:compute", Site: site, StartNS: base, DurNS: st.ComputeNS})
	}
}
