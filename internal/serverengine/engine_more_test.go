package serverengine

import (
	"context"
	"testing"

	"prism/internal/field"
	"prism/internal/params"
	"prism/internal/perm"
	"prism/internal/prg"
	"prism/internal/protocol"
	"prism/internal/share"
	"prism/internal/sharestore"
)

// fullView builds a consistent server view (with permutations sized to
// the table) directly from the initiator.
func fullView(t *testing.T, phi, m int, b uint64) *params.ServerView {
	t.Helper()
	sys, err := params.Generate(params.Config{
		NumOwners:  m,
		DomainSize: b,
		MaxAgg:     1000,
		Seed:       prg.SeedFromString("engine-more"),
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.ForServer(phi)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// storeFull uploads owner columns for a 2-owner table with χ, χ̄, one
// sum column and a count column, returning the plain per-cell sums.
func storeFull(t *testing.T, engines []*Engine, b uint64, verify bool) ([][]uint64, [][]uint16) {
	t.Helper()
	g := prg.New(prg.SeedFromString("store-full"))
	m := 2
	spec := protocol.TableSpec{
		Name: "t", B: b, AggCols: []string{"v"},
		HasVerify: verify, HasCount: true, Plain: true,
	}
	plainSums := make([][]uint64, m)
	plainChis := make([][]uint16, m)
	for owner := 0; owner < m; owner++ {
		chi := make([]uint16, b)
		sums := make([]uint64, b)
		counts := make([]uint64, b)
		for i := range chi {
			chi[i] = uint16(g.Uint64n(2))
			if chi[i] == 1 {
				sums[i] = g.Uint64n(100)
				counts[i] = 1 + g.Uint64n(3)
			}
		}
		plainSums[owner] = sums
		plainChis[owner] = chi
		chiShares := share.AdditiveSplitVector(g, chi, 113, 2)
		barShares := share.AdditiveSplitVector(g, complement(chi), 113, 2)
		sumShares := share.ShamirSplitVector(g, sums, 1, 3)
		cntShares := share.ShamirSplitVector(g, counts, 1, 3)
		for phi, e := range engines {
			req := protocol.StoreRequest{
				Owner: owner, Spec: spec,
				SumCols:  map[string][]uint64{"v": sumShares[phi]},
				CountCol: cntShares[phi],
			}
			if verify {
				req.VSumCols = map[string][]uint64{"v": sumShares[phi]}
				req.VCountCol = cntShares[phi]
			}
			if phi < 2 {
				req.ChiAdd = chiShares[phi]
				if verify {
					req.ChiBarAdd = barShares[phi]
				}
			}
			if _, err := e.Handle(context.Background(), req); err != nil {
				t.Fatal(err)
			}
		}
	}
	return plainSums, plainChis
}

func complement(chi []uint16) []uint16 {
	out := make([]uint16, len(chi))
	for i, v := range chi {
		out[i] = 1 - v
	}
	return out
}

func newEngines(t *testing.T, b uint64, opts func(phi int) Options) []*Engine {
	t.Helper()
	engines := make([]*Engine, 3)
	for phi := 0; phi < 3; phi++ {
		o := Options{Threads: 2}
		if opts != nil {
			o = opts(phi)
		}
		engines[phi] = New(fullView(t, phi, 2, b), o)
	}
	return engines
}

// TestAggregationReconstructs drives handleAgg directly and Lagrange-
// reconstructs the replies against the plain sums.
func TestAggregationReconstructs(t *testing.T) {
	b := uint64(64)
	engines := newEngines(t, b, nil)
	plainSums, plainChis := storeFull(t, engines, b, false)
	ctx := context.Background()

	// Selector z = 1 everywhere (aggregate every cell).
	g := prg.New(prg.SeedFromString("agg-z"))
	z := make([]uint64, b)
	for i := range z {
		z[i] = 1
	}
	zShares := share.ShamirSplitVector(g, z, 1, 3)
	replies := make([]protocol.AggReply, 3)
	for phi, e := range engines {
		r, err := e.Handle(ctx, protocol.AggRequest{
			Table: "t", Cols: []string{"v"}, WithCount: true, Z: zShares[phi],
		})
		if err != nil {
			t.Fatal(err)
		}
		replies[phi] = r.(protocol.AggReply)
	}
	for i := uint64(0); i < b; i++ {
		got := share.ShamirReconstruct([]field.Elem{
			replies[0].Sums["v"][i], replies[1].Sums["v"][i], replies[2].Sums["v"][i],
		})
		want := field.Add(field.Reduce(plainSums[0][i]), field.Reduce(plainSums[1][i]))
		if got != want {
			t.Fatalf("cell %d: sum %d want %d", i, got, want)
		}
	}
	_ = plainChis
}

func TestAggValidationErrors(t *testing.T) {
	b := uint64(16)
	engines := newEngines(t, b, nil)
	storeFull(t, engines, b, false)
	ctx := context.Background()
	e := engines[0]
	// Wrong selector length.
	if _, err := e.Handle(ctx, protocol.AggRequest{Table: "t", Cols: []string{"v"}, Z: make([]uint64, 3)}); err == nil {
		t.Error("short selector accepted")
	}
	// Verification requested without v-columns.
	if _, err := e.Handle(ctx, protocol.AggRequest{
		Table: "t", Cols: []string{"v"}, Z: make([]uint64, b), VZ: make([]uint64, b),
	}); err == nil {
		t.Error("verify without v-columns accepted")
	}
	// Unknown column.
	if _, err := e.Handle(ctx, protocol.AggRequest{Table: "t", Cols: []string{"ghost"}, Z: make([]uint64, b)}); err == nil {
		t.Error("unknown column accepted")
	}
	// Count requested on a table without count column → need new table.
	spec := protocol.TableSpec{Name: "nocount", B: b, Plain: true}
	g := prg.New(prg.SeedFromString("nocount"))
	chi := make([]uint16, b)
	for owner := 0; owner < 2; owner++ {
		sh := share.AdditiveSplitVector(g, chi, 113, 2)
		for phi := 0; phi < 2; phi++ {
			engines[phi].Handle(ctx, protocol.StoreRequest{Owner: owner, Spec: spec, ChiAdd: sh[phi]})
		}
		engines[2].Handle(ctx, protocol.StoreRequest{Owner: owner, Spec: spec})
	}
	if _, err := e.Handle(ctx, protocol.AggRequest{Table: "nocount", WithCount: true, Z: make([]uint64, b)}); err == nil {
		t.Error("count aggregation without count column accepted")
	}
}

// TestCountVerifyAlignment checks the Eq. (1) alignment property at the
// engine level: combining PF_s1(out) and PF_s2(vout) from both servers
// yields r1·r2 ≡ 1 at every position.
func TestCountVerifyAlignment(t *testing.T) {
	// Use non-plain storage with the real PF_db permutations, driven
	// through params so Eq. (1) holds.
	sys, err := params.Generate(params.Config{
		NumOwners:  2,
		DomainSize: 64,
		MaxAgg:     100,
		Seed:       prg.SeedFromString("count-align"),
	})
	if err != nil {
		t.Fatal(err)
	}
	g := prg.New(prg.SeedFromString("count-align-data"))
	engines := make([]*Engine, 2)
	for phi := 0; phi < 2; phi++ {
		v, _ := sys.ForServer(phi)
		engines[phi] = New(v, Options{Threads: 1})
	}
	ov := sys.ForOwner()
	spec := protocol.TableSpec{Name: "t", B: 64, HasVerify: true}
	for owner := 0; owner < 2; owner++ {
		chi := make([]uint16, 64)
		for i := range chi {
			chi[i] = uint16(g.Uint64n(2))
		}
		chiP := perm.Apply(ov.DB1, chi, nil)
		barP := perm.Apply(ov.DB2, complement(chi), nil)
		chiShares := share.AdditiveSplitVector(g, chiP, sys.Delta, 2)
		barShares := share.AdditiveSplitVector(g, barP, sys.Delta, 2)
		for phi := 0; phi < 2; phi++ {
			_, err := engines[phi].Handle(context.Background(), protocol.StoreRequest{
				Owner: owner, Spec: spec,
				ChiAdd: chiShares[phi], ChiBarAdd: barShares[phi],
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	outs := make([]protocol.CountReply, 2)
	for phi := 0; phi < 2; phi++ {
		r, err := engines[phi].Handle(context.Background(), protocol.CountRequest{
			Table: "t", Verify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		outs[phi] = r.(protocol.CountReply)
	}
	eta := sys.Eta
	for i := range outs[0].Out {
		r1 := outs[0].Out[i] * outs[1].Out[i] % eta
		r2 := outs[0].Vout[i] * outs[1].Vout[i] % eta
		if r1*r2%eta != 1 {
			t.Fatalf("position %d: r1·r2 = %d, want 1 (Eq. 1 alignment broken)", i, r1*r2%eta)
		}
	}
}

// TestDiskBackedSpillAndFetch exercises the disk path end to end at the
// engine level, including fetch-time accounting.
func TestDiskBackedSpillAndFetch(t *testing.T) {
	b := uint64(128)
	engines := newEngines(t, b, func(phi int) Options {
		st, err := sharestore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return Options{Threads: 2, Store: st, DiskBacked: true}
	})
	storeFull(t, engines, b, false)
	ctx := context.Background()
	r, err := engines[0].Handle(ctx, protocol.PSIRequest{Table: "t", QueryID: "q"})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.(protocol.PSIReply)
	if rep.Stats.FetchNS == 0 {
		t.Error("disk-backed PSI reported zero fetch time")
	}
	if len(rep.Out) != int(b) {
		t.Errorf("out length %d", len(rep.Out))
	}
	// Aggregation also reads from disk.
	g := prg.New(prg.SeedFromString("disk-z"))
	z := make([]uint64, b)
	zs := share.ShamirSplitVector(g, z, 1, 3)
	ra, err := engines[2].Handle(ctx, protocol.AggRequest{Table: "t", Cols: []string{"v"}, Z: zs[2]})
	if err != nil {
		t.Fatal(err)
	}
	if ra.(protocol.AggReply).Stats.FetchNS == 0 {
		t.Error("disk-backed aggregation reported zero fetch time")
	}
}

// announcerStub lets extreme-submit tests run without a real announcer.
type announcerStub struct {
	announces []protocol.AnnounceRequest
	reply     protocol.AnnounceFetchReply
}

func (a *announcerStub) Call(_ context.Context, addr string, req any) (any, error) {
	switch r := req.(type) {
	case protocol.AnnounceRequest:
		a.announces = append(a.announces, r)
		return protocol.AnnounceReply{Have: 1}, nil
	case protocol.AnnounceFetchRequest:
		return a.reply, nil
	}
	return nil, nil
}

func TestExtremeSlotPermutation(t *testing.T) {
	stub := &announcerStub{}
	view := fullView(t, 0, 2, 16)
	e := New(view, Options{AnnouncerAddr: "announcer", Caller: stub})
	ctx := context.Background()
	// Submit distinct shares for the 2 owners.
	for owner := 0; owner < 2; owner++ {
		_, err := e.Handle(ctx, protocol.ExtremeSubmitRequest{
			QueryID: "q", Kind: protocol.KindMax, Owner: owner,
			VShare: []byte{byte(owner + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(stub.announces) != 1 {
		t.Fatalf("announcer called %d times, want 1", len(stub.announces))
	}
	got := stub.announces[0].Shares
	// Slot i of the forwarded array must hold owner PF⁻¹(i)'s share.
	inv := view.PF.Inverse()
	for slot := range got {
		owner := inv.Image(slot)
		if got[slot][0] != byte(owner+1) {
			t.Fatalf("slot %d holds owner %d's share, want owner %d's", slot, got[slot][0]-1, owner)
		}
	}
	// Duplicate submissions are idempotent (no second announce).
	e.Handle(ctx, protocol.ExtremeSubmitRequest{QueryID: "q", Kind: protocol.KindMax, Owner: 0, VShare: []byte{9}})
	if len(stub.announces) != 1 {
		t.Error("duplicate submit re-forwarded")
	}
}

func TestExtremeFetchNotReady(t *testing.T) {
	stub := &announcerStub{reply: protocol.AnnounceFetchReply{Ready: false}}
	e := New(fullView(t, 0, 2, 16), Options{AnnouncerAddr: "announcer", Caller: stub})
	ctx := context.Background()
	e.Handle(ctx, protocol.ExtremeSubmitRequest{QueryID: "q", Kind: protocol.KindMax, Owner: 0, VShare: []byte{1}})
	r, err := e.Handle(ctx, protocol.ExtremeFetchRequest{QueryID: "q"})
	if err != nil {
		t.Fatal(err)
	}
	if r.(protocol.ExtremeFetchReply).Ready {
		t.Error("fetch reported ready before announcer resolution")
	}
	if _, err := e.Handle(ctx, protocol.ExtremeFetchRequest{QueryID: "ghost"}); err == nil {
		t.Error("unknown query id accepted")
	}
}

func TestExtremeFetchCachesResult(t *testing.T) {
	stub := &announcerStub{reply: protocol.AnnounceFetchReply{
		Ready: true, ValueShares: [][]byte{{42}}, IndexShare: 3, HasIndex: true,
	}}
	e := New(fullView(t, 1, 2, 16), Options{AnnouncerAddr: "announcer", Caller: stub})
	ctx := context.Background()
	e.Handle(ctx, protocol.ExtremeSubmitRequest{QueryID: "q", Kind: protocol.KindMax, Owner: 0, VShare: []byte{1}})
	for i := 0; i < 3; i++ {
		r, err := e.Handle(ctx, protocol.ExtremeFetchRequest{QueryID: "q"})
		if err != nil {
			t.Fatal(err)
		}
		rep := r.(protocol.ExtremeFetchReply)
		if !rep.Ready || rep.ValueShares[0][0] != 42 || rep.IndexShare != 3 {
			t.Fatalf("fetch %d: %+v", i, rep)
		}
	}
}

func TestClaimLifecycle(t *testing.T) {
	e := New(fullView(t, 0, 2, 16), Options{})
	ctx := context.Background()
	// Not ready before all owners.
	e.Handle(ctx, protocol.ClaimSubmitRequest{QueryID: "q", Owner: 0, Share: 5})
	r, _ := e.Handle(ctx, protocol.ClaimFetchRequest{QueryID: "q"})
	if r.(protocol.ClaimFetchReply).Ready {
		t.Error("claims ready with 1 of 2 owners")
	}
	e.Handle(ctx, protocol.ClaimSubmitRequest{QueryID: "q", Owner: 1, Share: 7})
	r, _ = e.Handle(ctx, protocol.ClaimFetchRequest{QueryID: "q"})
	rep := r.(protocol.ClaimFetchReply)
	if !rep.Ready || rep.Fpos[0] != 5 || rep.Fpos[1] != 7 {
		t.Fatalf("claims = %+v", rep)
	}
	// Unknown query id → not ready, no error.
	r, err := e.Handle(ctx, protocol.ClaimFetchRequest{QueryID: "ghost"})
	if err != nil || r.(protocol.ClaimFetchReply).Ready {
		t.Error("ghost claim query mishandled")
	}
	// Out-of-range owner rejected.
	if _, err := e.Handle(ctx, protocol.ClaimSubmitRequest{QueryID: "q", Owner: 9, Share: 1}); err == nil {
		t.Error("out-of-range claim owner accepted")
	}
}

func TestPSUPermuteMode(t *testing.T) {
	b := uint64(64)
	engines := newEngines(t, b, nil)
	storeFull(t, engines, b, false)
	ctx := context.Background()
	plain, err := engines[0].Handle(ctx, protocol.PSURequest{Table: "t", QueryID: "q"})
	if err != nil {
		t.Fatal(err)
	}
	permuted, err := engines[0].Handle(ctx, protocol.PSURequest{Table: "t", QueryID: "q", Permute: true})
	if err != nil {
		t.Fatal(err)
	}
	p := plain.(protocol.PSUReply).Out
	q := permuted.(protocol.PSUReply).Out
	if len(p) != len(q) {
		t.Fatal("length mismatch")
	}
	same := 0
	for i := range p {
		if p[i] == q[i] {
			same++
		}
	}
	if same == len(p) {
		t.Error("PF_s1 permutation did not move any cell")
	}
	// Multisets must match (it is a permutation of the same values).
	count := map[uint16]int{}
	for _, v := range p {
		count[v]++
	}
	for _, v := range q {
		count[v]--
	}
	for v, c := range count {
		if c != 0 {
			t.Fatalf("value %d multiplicity differs by %d", v, c)
		}
	}
}

func TestVerifyRequestsRejectedWithoutColumns(t *testing.T) {
	b := uint64(16)
	engines := newEngines(t, b, nil)
	storeFull(t, engines, b, false) // HasVerify = false
	ctx := context.Background()
	if _, err := engines[0].Handle(ctx, protocol.PSIVerifyRequest{Table: "t"}); err == nil {
		t.Error("PSI verify without χ̄ accepted")
	}
	if _, err := engines[0].Handle(ctx, protocol.CountRequest{Table: "t", Verify: true}); err == nil {
		t.Error("count verify without χ̄ accepted")
	}
}
