package serverengine

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"prism/internal/protocol"
	"prism/internal/sharestore"
)

// diskEnginesAt builds three disk-backed engines over caller-owned store
// directories, so a second set over the same dirs models a server
// restart.
func diskEnginesAt(t *testing.T, b, chunkCells uint64, dirs []string, opt func(o *Options)) ([]*Engine, []*sharestore.Store) {
	t.Helper()
	stores := make([]*sharestore.Store, 3)
	engines := newEngines(t, b, func(phi int) Options {
		st, err := sharestore.Open(dirs[phi])
		if err != nil {
			t.Fatal(err)
		}
		st.SetChunkCells(chunkCells)
		stores[phi] = st
		o := Options{Threads: 2, Store: st, DiskBacked: true}
		if opt != nil {
			opt(&o)
		}
		return o
	})
	return engines, stores
}

func storeDirs(t *testing.T) []string {
	t.Helper()
	return []string{t.TempDir(), t.TempDir(), t.TempDir()}
}

// stripReplyStats zeroes the timing stats of a reply so pre- and
// post-restart replies compare byte-for-byte.
func stripReplyStats(v any) any {
	switch r := v.(type) {
	case protocol.PSIReply:
		r.Stats = protocol.Stats{}
		return r
	case protocol.PSIVerifyReply:
		r.Stats = protocol.Stats{}
		return r
	case protocol.PSUReply:
		r.Stats = protocol.Stats{}
		return r
	case protocol.CountReply:
		r.Stats = protocol.Stats{}
		return r
	case protocol.AggReply:
		r.Stats = protocol.Stats{}
		return r
	}
	return v
}

// TestRecoverReloadsTables: a restarted disk-backed server reloads its
// tables from the manifests and serves byte-identical replies — without
// any owner re-outsourcing, with zero held bytes, and with the
// registration epoch preserved across the restart.
func TestRecoverReloadsTables(t *testing.T) {
	const b, chunk = 96, 16
	dirs := storeDirs(t)
	before, _ := diskEnginesAt(t, b, chunk, dirs, nil)
	storeSharded(t, before, b, 16, true)

	ctx := context.Background()
	queries := []any{
		protocol.PSIRequest{Table: "t", QueryID: "q"},
		protocol.PSIRequest{Table: "t", QueryID: "q", Shard: protocol.Range{Offset: 30, Count: 17}},
		protocol.PSIVerifyRequest{Table: "t", QueryID: "q"},
		protocol.PSURequest{Table: "t", QueryID: "q"},
		protocol.PSURequest{Table: "t", QueryID: "q", Shard: protocol.Range{Offset: 16, Count: 48}},
	}
	wantReplies := make([]any, len(queries))
	for i, q := range queries {
		r, err := before[0].Handle(ctx, q)
		if err != nil {
			t.Fatalf("pre-restart %T: %v", q, err)
		}
		wantReplies[i] = stripReplyStats(r)
	}
	wantList := before[0].handleListTables()

	// "Restart": fresh engines over the same stores, auto-recovering.
	after, _ := diskEnginesAt(t, b, chunk, dirs, func(o *Options) {
		o.AutoRecover = true
		o.CacheColumns = true
		o.CacheBytes = 1 << 16
	})
	for phi, e := range after {
		rep, err := e.RecoveryReport()
		if err != nil {
			t.Fatalf("server %d recovery: %v", phi, err)
		}
		if len(rep.Recovered) != 1 || rep.Recovered[0].Name != "t" {
			t.Fatalf("server %d recovered %+v, want table t", phi, rep.Recovered)
		}
		rt := rep.Recovered[0]
		if !reflect.DeepEqual(rt.Owners, []int{0, 1}) || len(rt.Adopted) != 0 {
			t.Fatalf("server %d recovered owners %v adopted %v", phi, rt.Owners, rt.Adopted)
		}
		// Two registrations (one per owner) happened before the restart.
		if rt.Epoch != 2 {
			t.Errorf("server %d recovered epoch %d, want 2", phi, rt.Epoch)
		}
		if len(rep.Quarantined) != 0 || len(rep.Ignored) != 0 {
			t.Errorf("server %d spurious quarantine/ignore: %+v", phi, rep)
		}
		if e.HeldBytes() != 0 {
			t.Errorf("server %d holds %d bytes after recovery, want 0 (columns on disk)", phi, e.HeldBytes())
		}
	}
	for i, q := range queries {
		r, err := after[0].Handle(ctx, q)
		if err != nil {
			t.Fatalf("post-restart %T: %v", q, err)
		}
		if !reflect.DeepEqual(stripReplyStats(r), wantReplies[i]) {
			t.Fatalf("%T reply diverged across restart", q)
		}
	}
	if gotList := after[0].handleListTables(); !reflect.DeepEqual(gotList, wantList) {
		t.Fatalf("ListTables diverged across restart:\n  before %+v\n  after  %+v", wantList, gotList)
	}
	// The Shamir server recovers and serves aggregation columns too.
	if _, err := after[2].Handle(ctx, protocol.AggRequest{
		Table: "t", Cols: []string{"v"}, Z: make([]uint64, b),
	}); err != nil {
		t.Fatalf("post-restart aggregation on S_2: %v", err)
	}
}

// TestRecoverEpochAdvancesAcrossRestart: registrations after a recovery
// continue the persisted epoch counter rather than restarting it, so an
// owner comparing epochs can detect a re-registration.
func TestRecoverEpochAdvancesAcrossRestart(t *testing.T) {
	const b = 64
	dirs := storeDirs(t)
	before, _ := diskEnginesAt(t, b, 16, dirs, nil)
	storeSharded(t, before, b, 16, false) // epochs: owner0 → 1, owner1 → 2

	after, _ := diskEnginesAt(t, b, 16, dirs, func(o *Options) { o.AutoRecover = true })
	e := after[0]
	// Owner 0 re-outsources: the epoch must continue from the manifest.
	storeSharded(t, after, b, 16, false)
	list := e.handleListTables()
	if len(list.Tables) != 1 || list.Tables[0].Epoch != 4 {
		t.Fatalf("epoch after restart + re-store = %+v, want 4", list.Tables)
	}
	var man TableManifest
	if _, st := after[0], e.opts.Store; true {
		if err := st.ReadManifest("t", &man); err != nil {
			t.Fatal(err)
		}
	}
	if man.Epoch != 4 || man.Version != ManifestVersion {
		t.Fatalf("manifest = %+v, want epoch 4 version %d", man, ManifestVersion)
	}
}

// recoverOne restarts a single engine over an existing store dir and
// returns its report.
func recoverOne(t *testing.T, b, chunk uint64, dirs []string) (*Engine, *RecoveryReport) {
	t.Helper()
	after, _ := diskEnginesAt(t, b, chunk, dirs, func(o *Options) { o.AutoRecover = true })
	rep, err := after[0].RecoveryReport()
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	return after[0], rep
}

// wantQuarantined asserts the report (and the store) record exactly one
// quarantined table with the given reason, and that the table is no
// longer served or on the live path.
func wantQuarantined(t *testing.T, e *Engine, rep *RecoveryReport, reason string) {
	t.Helper()
	if len(rep.Recovered) != 0 {
		t.Fatalf("corrupt table was recovered: %+v", rep.Recovered)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Reason != reason {
		t.Fatalf("quarantined = %+v, want one entry with reason %q", rep.Quarantined, reason)
	}
	if _, err := e.Handle(context.Background(), protocol.PSIRequest{Table: "t", QueryID: "q"}); err == nil ||
		!strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("quarantined table still answers queries (err=%v)", err)
	}
	qs, err := e.opts.Store.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || qs[0].Table != "t" || qs[0].Reason != reason {
		t.Fatalf("store quarantine records = %+v", qs)
	}
	if tables, _ := e.opts.Store.Tables(); len(tables) != 0 {
		t.Fatalf("quarantined table still listed live: %v", tables)
	}
}

// TestRecoverManifestEdgeCases: every way a manifest can disagree with
// the disk must quarantine (or ignore) the table — never crash boot,
// never serve corrupt data.
func TestRecoverManifestEdgeCases(t *testing.T) {
	const b, chunk = 64, 16
	seed := func(t *testing.T) ([]string, *sharestore.Store) {
		dirs := storeDirs(t)
		before, stores := diskEnginesAt(t, b, chunk, dirs, nil)
		storeSharded(t, before, b, 16, true)
		return dirs, stores[0]
	}
	manifestPath := func(st *sharestore.Store) string {
		return filepath.Join(st.Dir(), "t", "manifest.json")
	}

	t.Run("truncated-manifest", func(t *testing.T) {
		dirs, st := seed(t)
		raw, err := os.ReadFile(manifestPath(st))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(manifestPath(st), raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		e, rep := recoverOne(t, b, chunk, dirs)
		wantQuarantined(t, e, rep, "manifest-unreadable")
	})

	t.Run("deleted-column", func(t *testing.T) {
		dirs, st := seed(t)
		if err := st.DeleteColumn("t", "o0.chi"); err != nil {
			t.Fatal(err)
		}
		e, rep := recoverOne(t, b, chunk, dirs)
		wantQuarantined(t, e, rep, "column-corrupt")
	})

	t.Run("torn-chunk", func(t *testing.T) {
		dirs, st := seed(t)
		// Corrupt the first chunk segment of a live column.
		chunkFile := filepath.Join(st.Dir(), "t", "o1.chi.colv2", "c0.ck")
		raw, err := os.ReadFile(chunkFile)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0xff
		if err := os.WriteFile(chunkFile, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		e, rep := recoverOne(t, b, chunk, dirs)
		wantQuarantined(t, e, rep, "column-corrupt")
	})

	t.Run("owner-count-mismatch", func(t *testing.T) {
		dirs, st := seed(t)
		var man TableManifest
		if err := st.ReadManifest("t", &man); err != nil {
			t.Fatal(err)
		}
		man.Owners = []int{0, 7} // m is 2: owner 7 cannot exist
		if err := st.WriteManifest("t", man); err != nil {
			t.Fatal(err)
		}
		e, rep := recoverOne(t, b, chunk, dirs)
		wantQuarantined(t, e, rep, "owner-out-of-range")
	})

	t.Run("newer-manifest-version", func(t *testing.T) {
		dirs, st := seed(t)
		var man TableManifest
		if err := st.ReadManifest("t", &man); err != nil {
			t.Fatal(err)
		}
		man.Version = ManifestVersion + 41
		if err := st.WriteManifest("t", man); err != nil {
			t.Fatal(err)
		}
		e, rep := recoverOne(t, b, chunk, dirs)
		wantQuarantined(t, e, rep, "manifest-version-unsupported")
	})

	t.Run("v1-era-no-manifest", func(t *testing.T) {
		dirs := storeDirs(t)
		st, err := sharestore.Open(dirs[0])
		if err != nil {
			t.Fatal(err)
		}
		// A column directory with no manifest at all (pre-manifest era):
		// ignored, never served, never quarantined, never a crash.
		if err := st.CreateU16("legacy", "o0.chi", b); err != nil {
			t.Fatal(err)
		}
		e, rep := recoverOne(t, b, chunk, dirs)
		if len(rep.Ignored) != 1 || rep.Ignored[0] != "legacy" {
			t.Fatalf("ignored = %v, want [legacy]", rep.Ignored)
		}
		if len(rep.Quarantined) != 0 || len(rep.Recovered) != 0 {
			t.Fatalf("v1-era dir misclassified: %+v", rep)
		}
		if _, err := e.Handle(context.Background(), protocol.PSIRequest{Table: "legacy", QueryID: "q"}); err == nil {
			t.Fatal("manifest-less table served")
		}
		// The directory survives untouched for manual inspection.
		if tables, _ := e.opts.Store.Tables(); len(tables) != 1 || tables[0] != "legacy" {
			t.Fatalf("legacy dir gone: %v", tables)
		}
	})
}

// TestRecoverResumesPromotion: a crash between the pending→live renames
// and the manifest write leaves an owner half-promoted; recovery
// verifies both sides, finishes the renames, adopts the owner into the
// manifest with a bumped epoch, and the queries match the pre-crash
// replies.
func TestRecoverResumesPromotion(t *testing.T) {
	const b, chunk = 64, 16
	dirs := storeDirs(t)
	before, stores := diskEnginesAt(t, b, chunk, dirs, nil)
	storeSharded(t, before, b, 16, true)
	ctx := context.Background()
	want, err := before[0].Handle(ctx, protocol.PSIRequest{Table: "t", QueryID: "q"})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the crash on server 0: owner 1 has some columns still
	// pending and is missing from the manifest.
	st := stores[0]
	for _, col := range []string{"cnt", "vcnt", "sum.v"} {
		if err := st.RenameColumn("t", "o1."+col, "pend1."+col); err != nil {
			t.Fatal(err)
		}
	}
	var man TableManifest
	if err := st.ReadManifest("t", &man); err != nil {
		t.Fatal(err)
	}
	man.Owners = []int{0}
	man.Epoch = 1
	if err := st.WriteManifest("t", man); err != nil {
		t.Fatal(err)
	}

	e, rep := recoverOne(t, b, chunk, dirs)
	if len(rep.Recovered) != 1 {
		t.Fatalf("recovered = %+v", rep.Recovered)
	}
	rt := rep.Recovered[0]
	if !reflect.DeepEqual(rt.Owners, []int{0, 1}) || !reflect.DeepEqual(rt.Adopted, []int{1}) {
		t.Fatalf("owners %v adopted %v, want [0 1] / [1]", rt.Owners, rt.Adopted)
	}
	if rt.Epoch != 2 {
		t.Errorf("adopted epoch = %d, want 2", rt.Epoch)
	}
	got, err := e.Handle(ctx, protocol.PSIRequest{Table: "t", QueryID: "q"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripReplyStats(got), stripReplyStats(want)) {
		t.Fatal("PSI reply diverged after promotion resume")
	}
	// The adoption is durable: the manifest now vouches for owner 1.
	if err := st.ReadManifest("t", &man); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(man.Owners, []int{0, 1}) || man.Epoch != 2 {
		t.Fatalf("manifest after adoption = %+v", man)
	}
	if st.HasColumn("t", "pend1.cnt") {
		t.Error("pending column survived promotion resume")
	}
}

// TestRecoverReclaimsCrashedUpload: an owner that crashed mid-upload
// (pending columns only, not in the manifest) is reclaimed — pending
// columns deleted, the completed owners keep serving.
func TestRecoverReclaimsCrashedUpload(t *testing.T) {
	const b, chunk = 64, 16
	dirs := storeDirs(t)
	before, stores := diskEnginesAt(t, b, chunk, dirs, nil)
	storeSharded(t, before, b, 16, true)
	st := stores[0]

	// Rewind server 0 to "owner 1 never completed": live columns gone,
	// a partially streamed pending assembly in their place.
	spec := protocol.TableSpec{Name: "t", B: b, AggCols: []string{"v"}, HasVerify: true, HasCount: true, Plain: true}
	for _, cd := range before[0].specCols(spec) {
		if err := st.DeleteColumn("t", colKey(1, cd.name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CreateU16("t", "pend1.chi", b); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteU16Range("t", "pend1.chi", 0, make([]uint16, b/2)); err != nil {
		t.Fatal(err)
	}
	var man TableManifest
	if err := st.ReadManifest("t", &man); err != nil {
		t.Fatal(err)
	}
	man.Owners = []int{0}
	if err := st.WriteManifest("t", man); err != nil {
		t.Fatal(err)
	}

	_, rep := recoverOne(t, b, chunk, dirs)
	if len(rep.Recovered) != 1 || !reflect.DeepEqual(rep.Recovered[0].Owners, []int{0}) {
		t.Fatalf("recovered = %+v, want owners [0]", rep.Recovered)
	}
	if rep.PendingReclaimed != 1 {
		t.Errorf("reclaimed %d assemblies, want 1", rep.PendingReclaimed)
	}
	if st.HasColumn("t", "pend1.chi") {
		t.Error("crashed upload's pending column survived recovery")
	}
}

// TestListTablesEpoch: the ListTables RPC reports registrations and the
// epoch advances on every one (in-memory engines count from boot).
func TestListTablesEpoch(t *testing.T) {
	const b = 32
	engines := newEngines(t, b, nil)
	reply, err := engines[0].Handle(context.Background(), protocol.ListTablesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(reply.(protocol.ListTablesReply).Tables); n != 0 {
		t.Fatalf("empty engine lists %d tables", n)
	}
	storeFull(t, engines, b, false)
	reply, err = engines[0].Handle(context.Background(), protocol.ListTablesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	tables := reply.(protocol.ListTablesReply).Tables
	if len(tables) != 1 || tables[0].Spec.Name != "t" ||
		!reflect.DeepEqual(tables[0].Owners, []int{0, 1}) || tables[0].Epoch != 2 {
		t.Fatalf("ListTables = %+v, want table t owners [0 1] epoch 2", tables)
	}
	// Drop + full re-outsource must not reuse old epochs: a probe that
	// recorded epoch 2 must see the replacement as a different
	// registration.
	if _, err := engines[0].Handle(context.Background(), protocol.DropRequest{Table: "t"}); err != nil {
		t.Fatal(err)
	}
	storeFull(t, engines, b, false)
	reply, err = engines[0].Handle(context.Background(), protocol.ListTablesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reply.(protocol.ListTablesReply).Tables[0].Epoch; got != 4 {
		t.Fatalf("epoch after drop + re-store = %d, want 4 (continues past the dropped table's 2)", got)
	}
}

// TestRecoverNeedsDisk: recovery on a RAM-only engine reports a clear
// error instead of pretending to scan.
func TestRecoverNeedsDisk(t *testing.T) {
	engines := newEngines(t, 16, nil)
	if _, err := engines[0].Recover(); err == nil {
		t.Fatal("Recover on a memory engine did not error")
	}
}
