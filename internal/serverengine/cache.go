package serverengine

import (
	"errors"
	"sync"
)

// colCache is a per-table hot-column cache for disk-backed serving: the
// χ-share and uint64 aggregation columns a query fetches from the share
// store are loaded once per table epoch instead of once per query
// session. An epoch ends whenever the table changes (a Store from any
// owner, a Drop): the engine swaps in a fresh cache so later queries
// never serve stale columns. Columns already cached stay visible to
// queries holding the old snapshot, but a cache miss always reads the
// store's current files — so, exactly as without the cache, a query
// overlapping a re-outsource may combine columns from two epochs. That
// coordination is the caller's documented responsibility (see the
// package README: don't re-outsource a table being queried at that
// instant).
//
// Loads are single-flight: under concurrent traffic the first query
// reads a column from disk while the rest wait on the entry, so 40
// simultaneous queries cost one disk read per column, not 40.
type colCache struct {
	mu      sync.Mutex
	entries map[string]*colEntry
}

type colEntry struct {
	ready chan struct{} // closed once the load completes
	u16   []uint16
	u64   []uint64
	err   error
}

func newColCache() *colCache {
	return &colCache{entries: make(map[string]*colEntry)}
}

// getU16 returns the cached column under key, loading it via load on
// first use. hit reports whether the load was skipped (served from the
// cache, possibly after waiting out another query's in-flight load).
// Failed loads are not cached. finish is guaranteed even when load
// panics (the transport recovers handler panics, so an abandoned entry
// would otherwise park every later query on ready forever).
func (c *colCache) getU16(key string, load func() ([]uint16, error)) (v []uint16, hit bool, err error) {
	e, hit := c.entry(key)
	if !hit {
		defer func() { c.finish(key, e) }()
		e.err = errLoadAborted
		e.u16, e.err = load()
		return e.u16, false, e.err
	}
	<-e.ready
	return e.u16, true, e.err
}

// getU64 is getU16 for uint64 columns.
func (c *colCache) getU64(key string, load func() ([]uint64, error)) (v []uint64, hit bool, err error) {
	e, hit := c.entry(key)
	if !hit {
		defer func() { c.finish(key, e) }()
		e.err = errLoadAborted
		e.u64, e.err = load()
		return e.u64, false, e.err
	}
	<-e.ready
	return e.u64, true, e.err
}

// errLoadAborted is what waiters observe when a column load panicked
// before assigning its real result.
var errLoadAborted = errors.New("serverengine: column load aborted")

// entry claims or joins the entry for key. When the caller claimed it
// (hit false) it must load the column and call finish.
func (c *colCache) entry(key string) (*colEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, true
	}
	e := &colEntry{ready: make(chan struct{})}
	c.entries[key] = e
	return e, false
}

// finish publishes a completed load, dropping failed entries so a
// transient disk error does not poison the epoch.
func (c *colCache) finish(key string, e *colEntry) {
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.ready)
}

// Len reports the number of cached columns (tests and monitoring).
func (c *colCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
