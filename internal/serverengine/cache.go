package serverengine

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"prism/internal/sharestore"
)

// chunkCache is a per-table hot-chunk cache for disk-backed serving: the
// χ-share and uint64 aggregation columns a query fetches from the share
// store are cached at chunk granularity, so shard-window queries keep
// only the chunks they actually touch resident — and re-touching a hot
// window costs no disk read. An epoch ends whenever the table changes (a
// Store from any owner, a Drop): the engine swaps in a fresh cache so
// later queries never serve stale chunks. Chunks already cached stay
// visible to queries holding the old snapshot, but a cache miss always
// reads the store's current files — so, exactly as without the cache, a
// query overlapping a re-outsource may combine columns from two epochs.
// That coordination is the caller's documented responsibility (see the
// package README: don't re-outsource a table being queried at that
// instant).
//
// Residency is bounded by a byte budget (Options.CacheBytes; <= 0 means
// unlimited, the legacy whole-column hot cache behaviour): completed
// chunks are kept on an LRU list and the least-recently-used chunks are
// evicted once the budget is exceeded. Evicting a chunk another query
// still holds a slice of is safe — the cache merely forgets it.
//
// Loads are single-flight per chunk: under concurrent traffic the first
// query reads a chunk from disk while the rest wait on the entry, so 40
// simultaneous queries cost one disk read per chunk, not 40.
type chunkCache struct {
	mu        sync.Mutex
	budget    int64 // <= 0 → unlimited
	bytes     int64
	track     func(delta int64) // held-bytes gauge hook (may be nil)
	entries   map[string]*chunkEntry
	lru       *list.List // front = most recently used *chunkEntry
	info      map[string]sharestore.ColumnInfo
	discarded bool
}

type chunkEntry struct {
	key   string
	ready chan struct{} // closed once the load completes
	u16   []uint16
	u64   []uint64
	size  int64
	err   error
	elem  *list.Element // nil until finished (or after eviction)
}

func newChunkCache(budget int64, track func(delta int64)) *chunkCache {
	return &chunkCache{
		budget:  budget,
		track:   track,
		entries: make(map[string]*chunkEntry),
		lru:     list.New(),
		info:    make(map[string]sharestore.ColumnInfo),
	}
}

func chunkKey(col string, k uint64) string { return fmt.Sprintf("%s#%d", col, k) }

// fullColumnChunk is the sentinel chunk id under which a whole assembled
// multi-chunk column is cached (monolithic query shapes read entire
// columns; caching the joined column restores the zero-copy warm-query
// handoff the pre-chunk hot-column cache provided).
const fullColumnChunk = ^uint64(0)

// getU16 returns the cached chunk k of column col, loading it via load
// on first use. hit reports whether the load was skipped (served from
// the cache, possibly after waiting out another query's in-flight load).
// Failed loads are not cached. finish is guaranteed even when load
// panics (the transport recovers handler panics, so an abandoned entry
// would otherwise park every later query on ready forever).
func (c *chunkCache) getU16(col string, k uint64, load func() ([]uint16, error)) (v []uint16, hit bool, err error) {
	e, hit := c.entry(chunkKey(col, k))
	if !hit {
		defer func() { c.finish(e) }()
		e.err = errLoadAborted
		e.u16, e.err = load()
		e.size = 2 * int64(len(e.u16))
		return e.u16, false, e.err
	}
	<-e.ready
	return e.u16, true, e.err
}

// getU64 is getU16 for uint64 chunks.
func (c *chunkCache) getU64(col string, k uint64, load func() ([]uint64, error)) (v []uint64, hit bool, err error) {
	e, hit := c.entry(chunkKey(col, k))
	if !hit {
		defer func() { c.finish(e) }()
		e.err = errLoadAborted
		e.u64, e.err = load()
		e.size = 8 * int64(len(e.u64))
		return e.u64, false, e.err
	}
	<-e.ready
	return e.u64, true, e.err
}

// getInfo caches column shapes (the 26-byte chunk-index read) for the
// epoch. Loads may race; the shape is immutable within an epoch, so the
// last write wins harmlessly.
func (c *chunkCache) getInfo(col string, load func() (sharestore.ColumnInfo, error)) (sharestore.ColumnInfo, error) {
	c.mu.Lock()
	ci, ok := c.info[col]
	c.mu.Unlock()
	if ok {
		return ci, nil
	}
	ci, err := load()
	if err != nil {
		return ci, err
	}
	c.mu.Lock()
	c.info[col] = ci
	c.mu.Unlock()
	return ci, nil
}

// errLoadAborted is what waiters observe when a chunk load panicked
// before assigning its real result.
var errLoadAborted = errors.New("serverengine: chunk load aborted")

// entry claims or joins the entry for key. When the caller claimed it
// (hit false) it must load the chunk and call finish.
func (c *chunkCache) entry(key string) (*chunkEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		return e, true
	}
	e := &chunkEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	return e, false
}

// finish publishes a completed load: failed entries are dropped so a
// transient disk error does not poison the epoch; successful entries
// join the LRU and the budget is enforced.
func (c *chunkCache) finish(e *chunkEntry) {
	c.mu.Lock()
	switch {
	case e.err != nil:
		delete(c.entries, e.key)
	case c.discarded:
		// The epoch ended while the load was in flight: hand the value to
		// waiters but keep it out of the (already released) accounting.
	default:
		c.bytes += e.size
		if c.track != nil {
			c.track(e.size)
		}
		e.elem = c.lru.PushFront(e)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
}

// evictLocked drops least-recently-used chunks until the budget holds,
// always keeping the most recent chunk resident (a single chunk larger
// than the budget must still serve). Caller holds c.mu.
func (c *chunkCache) evictLocked() {
	for c.budget > 0 && c.bytes > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		victim := back.Value.(*chunkEntry)
		c.lru.Remove(back)
		victim.elem = nil
		delete(c.entries, victim.key)
		c.bytes -= victim.size
		if c.track != nil {
			c.track(-victim.size)
		}
		mCacheEvictions.Inc()
	}
}

// discard releases the epoch's accounted bytes and detaches the cache:
// later loads still serve waiters (single-flight) but are not accounted
// or retained against the budget. Called when the table's epoch ends.
func (c *chunkCache) discard() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.discarded {
		return
	}
	c.discarded = true
	if c.track != nil && c.bytes != 0 {
		c.track(-c.bytes)
	}
	c.bytes = 0
	c.entries = make(map[string]*chunkEntry)
	c.lru.Init()
	c.info = make(map[string]sharestore.ColumnInfo)
}

// Len reports the number of cached chunks (tests and monitoring).
func (c *chunkCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes reports the accounted resident bytes (tests and monitoring).
func (c *chunkCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
