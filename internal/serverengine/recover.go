// Cold-boot recovery: a restarted disk-backed server reloads its
// serving state from the share store's table manifests instead of
// booting empty and forcing every owner to re-outsource.
//
// The recovery state machine, per table directory found in the store:
//
//  1. No manifest → a version-1-era directory (or debris): left in
//     place, reported as ignored, never served and never deleted.
//  2. Manifest unreadable, from a newer format version, naming a
//     different table, disagreeing with the system domain, or listing
//     impossible owners → the whole table is quarantined (moved under
//     .quarantine/ with a machine-readable reason, data preserved).
//  3. Every manifest-listed owner's columns are validated against the
//     spec-derived layout: element width, cell count, chunk count, and
//     a CRC spot-check of the edge chunks. Any failure quarantines the
//     table — a corrupt column is never served and never crashes boot.
//  4. Owners NOT in the manifest are classified by what their columns
//     look like:
//     - only pending ("pend<j>.*") columns → the owner crashed
//     mid-upload; the received-window bookkeeping died with the old
//     process, so the assembly cannot be resumed and is reclaimed
//     (pending columns deleted; the owner's retry starts clean).
//     - a mix of live and pending columns (or all live, manifest write
//     lost) → the server crashed mid-promotion. Promotion only starts
//     once every cell of every column has arrived, so each column is
//     complete on exactly one side; recovery verifies each side,
//     finishes the renames, and adopts the owner into the manifest
//     (epoch bumped, manifest rewritten durably).
//     - anything else (a column missing on both sides, a corrupt half)
//     → quarantined as a partial promotion.
//  5. Surviving tables are registered into the serving path exactly as
//     a live registration would: on-disk owner column sets (zero held
//     bytes), a cold hot-chunk cache, and the manifest's epoch.
//
// Recovery is idempotent — tables already registered are skipped — and
// per-table failures never abort the scan: the server boots with
// whatever is healthy and the RecoveryReport says what happened to the
// rest.
package serverengine

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"

	"prism/internal/protocol"
)

// RecoveredTable describes one table Recover re-registered.
type RecoveredTable struct {
	Name   string
	Spec   protocol.TableSpec
	Owners []int
	Epoch  uint64
	// Adopted lists owners whose interrupted promotion was completed
	// during recovery (crash between the pending-column renames and the
	// manifest write); empty for clean restarts.
	Adopted []int
}

// QuarantinedTable describes one table Recover moved aside.
type QuarantinedTable struct {
	Name   string
	Reason string // stable machine-readable code
	Detail string
}

// RecoveryReport is the outcome of one Recover pass.
type RecoveryReport struct {
	Recovered   []RecoveredTable
	Quarantined []QuarantinedTable
	// Ignored lists directories left untouched and unserved: version-1-era
	// tables without a manifest, and manifests listing no completed owner.
	Ignored []string
	// PendingReclaimed counts crashed mid-upload assemblies whose pending
	// columns were deleted (one per table/owner pair).
	PendingReclaimed int
}

// Recover scans the share store, validates each table's manifest against
// the chunk indexes actually on disk, and re-registers every complete
// table into the serving path — a restarted server resumes serving
// without any owner re-outsourcing. Corrupt or partially-promoted tables
// are quarantined with a machine-readable reason rather than served;
// crashed mid-upload assemblies are reclaimed; interrupted promotions
// are resumed and adopted. The returned error reports store-level I/O
// failures only — per-table problems are in the report.
func (e *Engine) Recover() (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	if !e.opts.DiskBacked || e.opts.Store == nil {
		return rep, errors.New("serverengine: recovery needs a disk-backed store")
	}
	names, err := e.opts.Store.Tables()
	if err != nil {
		return rep, fmt.Errorf("serverengine: recovery scan: %w", err)
	}
	var errs []error
	for _, name := range names {
		if err := e.recoverTable(name, rep); err != nil {
			errs = append(errs, fmt.Errorf("table %q: %w", name, err))
		}
	}
	return rep, errors.Join(errs...)
}

// recoverTable runs the state machine above for one table directory.
// The returned error reports I/O failures (rename/manifest writes);
// validation failures quarantine and return nil.
func (e *Engine) recoverTable(name string, rep *RecoveryReport) error {
	st := e.opts.Store
	e.mu.RLock()
	_, serving := e.tables[name]
	e.mu.RUnlock()
	if serving {
		return nil // already registered (Recover re-run, or raced a Store)
	}

	var man TableManifest
	if err := st.ReadManifest(name, &man); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			rep.Ignored = append(rep.Ignored, name) // v1-era directory
			return nil
		}
		e.quarantine(rep, name, "manifest-unreadable", err.Error())
		return nil
	}
	if man.Version > ManifestVersion {
		e.quarantine(rep, name, "manifest-version-unsupported",
			fmt.Sprintf("manifest version %d, this server understands <= %d", man.Version, ManifestVersion))
		return nil
	}
	if man.Spec.Name != name {
		e.quarantine(rep, name, "manifest-name-mismatch",
			fmt.Sprintf("directory holds table %q but manifest describes %q", name, man.Spec.Name))
		return nil
	}
	if man.Spec.B == 0 || (!man.Spec.Plain && man.Spec.B != e.view.B) {
		e.quarantine(rep, name, "domain-mismatch",
			fmt.Sprintf("manifest table has %d cells, system domain is %d", man.Spec.B, e.view.B))
		return nil
	}
	if man.Group != e.opts.Group {
		e.quarantine(rep, name, "group-mismatch",
			fmt.Sprintf("manifest written by server group %d, this server serves group %d", man.Group, e.opts.Group))
		return nil
	}
	seen := make(map[int]bool, len(man.Owners))
	for _, j := range man.Owners {
		if j < 0 || j >= e.view.M || seen[j] {
			e.quarantine(rep, name, "owner-out-of-range",
				fmt.Sprintf("manifest owner %d invalid for m=%d", j, e.view.M))
			return nil
		}
		seen[j] = true
	}

	cols := e.specCols(man.Spec)

	// Manifest-covered owners: every column must be present and clean.
	for _, j := range man.Owners {
		for _, cd := range cols {
			if err := st.VerifyColumn(name, colKey(j, cd.name), cd.width, man.Spec.B); err != nil {
				e.quarantine(rep, name, "column-corrupt", err.Error())
				return nil
			}
		}
	}

	// Owners outside the manifest: resume interrupted promotions, reclaim
	// crashed uploads, quarantine inconsistent leftovers.
	owners := append([]int(nil), man.Owners...)
	var adopted []int
	for j := 0; j < e.view.M; j++ {
		if seen[j] {
			// A pending assembly for an already-registered owner is an
			// interrupted re-outsource; the registered epoch keeps serving.
			rep.PendingReclaimed += e.reclaimOwnerPending(name, cols, j)
			continue
		}
		liveN, pendN := 0, 0
		for _, cd := range cols {
			if st.HasColumn(name, colKey(j, cd.name)) {
				liveN++
			}
			if st.HasColumn(name, pendColKey(j, cd.name)) {
				pendN++
			}
		}
		switch {
		case liveN == 0 && pendN == 0:
			// Owner never uploaded (or was reclaimed before): nothing to do.
		case liveN == 0:
			// Crashed mid-upload: the received-window bookkeeping is gone,
			// so the assembly cannot be resumed.
			rep.PendingReclaimed += e.reclaimOwnerPending(name, cols, j)
		default:
			// Promotion had begun, so every column was fully assembled:
			// verify each side and finish the renames.
			if reason, detail, err := e.resumePromotion(name, cols, man.Spec.B, j); err != nil {
				return err
			} else if reason != "" {
				e.quarantine(rep, name, reason, detail)
				return nil
			}
			e.reclaimOwnerPending(name, cols, j) // duplicates the renames skipped
			owners = append(owners, j)
			adopted = append(adopted, j)
		}
	}
	if len(owners) == 0 {
		rep.Ignored = append(rep.Ignored, name) // manifest lists no completed owner
		return nil
	}
	sort.Ints(owners)
	epoch := man.Epoch
	if len(adopted) > 0 {
		epoch++
	}

	// Replay the delta log: validate and merge every surviving segment
	// into a fresh overlay, in sequence order, exactly as the live
	// StoreDelta path built it. Sequence gaps are legal (an unacked
	// append), but a torn or corrupt segment quarantines the table like
	// a torn chunk, and so does a segment naming a column outside the
	// manifest layout or a position outside the domain. Entries at or
	// below an owner's re-outsource floor describe a superseded share
	// stream and are skipped.
	segs, err := st.DeltaSegs(name)
	if err != nil {
		return err
	}
	var overlay *deltaOverlay
	var deltaSeq uint64
	colDefs := make(map[string]colDef, len(owners)*len(cols))
	colOwner := make(map[string]int, len(owners)*len(cols))
	for _, j := range owners {
		for _, cd := range cols {
			k := colKey(j, cd.name)
			colDefs[k] = cd
			colOwner[k] = j
		}
	}
	for _, seq := range segs {
		dcs, rerr := st.ReadDeltaSeg(name, seq)
		if rerr != nil {
			e.quarantine(rep, name, "delta-corrupt", rerr.Error())
			return nil
		}
		keep := dcs[:0]
		for _, dc := range dcs {
			cd, known := colDefs[dc.Name]
			if !known || cd.width != dc.Width {
				e.quarantine(rep, name, "delta-invalid",
					fmt.Sprintf("segment d%d references column %q (width %d) outside the table layout", seq, dc.Name, dc.Width))
				return nil
			}
			for _, p := range dc.Pos {
				if p >= man.Spec.B {
					e.quarantine(rep, name, "delta-invalid",
						fmt.Sprintf("segment d%d column %q position %d outside domain of %d cells", seq, dc.Name, p, man.Spec.B))
					return nil
				}
			}
			if man.DeltaFloor[colOwner[dc.Name]] >= seq {
				continue
			}
			keep = append(keep, dc)
		}
		if len(keep) > 0 {
			if overlay == nil {
				overlay = newDeltaOverlay()
			}
			overlay.insert(keep, seq)
		}
		deltaSeq = seq
	}
	for _, f := range man.DeltaFloor {
		if f > deltaSeq {
			deltaSeq = f
		}
	}

	// Register: identical to a live registration — on-disk column sets
	// (zero held bytes), a cold cache, the durable epoch, the replayed
	// delta overlay.
	e.mu.Lock()
	if _, exists := e.tables[name]; exists {
		e.mu.Unlock()
		return nil // raced with a live Store; the live registration wins
	}
	if f := e.epochFloor[name]; f > epoch {
		epoch = f // a drop in this process outran the manifest on disk
	}
	t := &table{spec: man.Spec, owners: make(map[int]*ownerCols, len(owners)), epoch: epoch, deltaSeq: deltaSeq}
	for _, j := range owners {
		t.owners[j] = &ownerCols{onDisk: true}
	}
	if overlay != nil {
		t.delta = overlay
		e.trackHeld(overlay.heldBytes())
	}
	if len(man.DeltaFloor) > 0 {
		t.deltaFloor = make(map[int]uint64, len(man.DeltaFloor))
		for j, s := range man.DeltaFloor {
			t.deltaFloor[j] = s
		}
	}
	if e.opts.CacheColumns {
		t.cache = newChunkCache(e.opts.CacheBytes, e.trackHeld)
	}
	e.tables[name] = t
	e.mu.Unlock()

	if len(adopted) > 0 {
		// Make the adoption durable so the next restart trusts the
		// promoted columns directly. The registration snapshot is re-taken
		// while holding manifestMu — the same ordering finishStore uses —
		// so a registration racing this Recover (a live upload completing
		// on a running engine) can never be overwritten by a stale view.
		if err := e.writeManifestSnapshot(name, man.Spec); err != nil {
			return err
		}
	}
	rep.Recovered = append(rep.Recovered, RecoveredTable{
		Name: name, Spec: man.Spec, Owners: owners, Epoch: epoch, Adopted: adopted,
	})
	return nil
}

// resumePromotion completes an interrupted pending→live rename sweep for
// one owner. Each column must be complete on exactly one side (live
// already promoted, or pending fully assembled); the pending side is
// verified before it is renamed. A non-empty reason means the table must
// be quarantined; err reports I/O failures.
func (e *Engine) resumePromotion(name string, cols []colDef, b uint64, owner int) (reason, detail string, err error) {
	st := e.opts.Store
	for _, cd := range cols {
		live, pend := colKey(owner, cd.name), pendColKey(owner, cd.name)
		switch {
		case st.HasColumn(name, live):
			if verr := st.VerifyColumn(name, live, cd.width, b); verr != nil {
				return "partial-promotion", verr.Error(), nil
			}
		case st.HasColumn(name, pend):
			if verr := st.VerifyColumn(name, pend, cd.width, b); verr != nil {
				return "partial-promotion", verr.Error(), nil
			}
			if rerr := st.RenameColumn(name, pend, live); rerr != nil {
				return "", "", rerr
			}
		default:
			return "partial-promotion",
				fmt.Sprintf("owner %d column %s missing in both live and pending form", owner, cd.name), nil
		}
	}
	return "", "", nil
}

// reclaimOwnerPending deletes one owner's pending upload columns,
// returning 1 if any existed (one reclaimed assembly), else 0.
func (e *Engine) reclaimOwnerPending(name string, cols []colDef, owner int) int {
	st := e.opts.Store
	had := 0
	for _, cd := range cols {
		key := pendColKey(owner, cd.name)
		if st.HasColumn(name, key) {
			had = 1
		}
		st.DeleteColumn(name, key) // best-effort; missing is not an error
	}
	return had
}

// quarantine moves a failing table aside and records it in the report.
// A failed move is still reported — the table stays on disk but is never
// registered, so it cannot be served either way.
func (e *Engine) quarantine(rep *RecoveryReport, table, reason, detail string) {
	if err := e.opts.Store.QuarantineTable(table, reason, detail); err != nil {
		detail = fmt.Sprintf("%s (quarantine move failed: %v)", detail, err)
	}
	rep.Quarantined = append(rep.Quarantined, QuarantinedTable{Name: table, Reason: reason, Detail: detail})
}
