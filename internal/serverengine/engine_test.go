package serverengine

import (
	"context"
	"testing"

	"prism/internal/modmath"
	"prism/internal/params"
	"prism/internal/perm"
	"prism/internal/prg"
	"prism/internal/protocol"
	"prism/internal/transport"
)

// paperView builds the hand-computed parameter set of Example 5.1:
// δ=5, η=11, η'=143, g=3, m=3 with A(m) = (1, 2).
func paperView(index int) *params.ServerView {
	v := &params.ServerView{
		Index:    index,
		M:        3,
		B:        3,
		Delta:    5,
		EtaPrime: 143,
		G:        3,
		PSUSeed:  prg.SeedFromString("paper-psu"),
	}
	if index == 0 {
		v.MShare = 1
	} else {
		v.MShare = 2
	}
	v.S1 = perm.Identity(3)
	v.S2 = perm.Identity(3)
	v.PF = perm.Identity(3)
	return v
}

// storePaperShares loads the exact additive shares of Tables 5-7 into a
// Plain table (negative shares reduced mod 5).
func storePaperShares(t *testing.T, e *Engine, serverIdx int) {
	t.Helper()
	spec := protocol.TableSpec{Name: "diseases", B: 3, Plain: true}
	// share1 rows per owner; share2 = negatives mod 5.
	share1 := [][]uint16{
		{4, 2, 3}, // DB1 (Table 5)
		{3, 4, 3}, // DB2 (Table 6)
		{2, 3, 4}, // DB3 (Table 7)
	}
	share2 := [][]uint16{
		{2, 3, 3}, // (-3,-2,-2) mod 5
		{3, 2, 2}, // (-2,-3,-3) mod 5
		{4, 2, 2}, // (-1,-3,-3) mod 5
	}
	src := share1
	if serverIdx == 1 {
		src = share2
	}
	for owner := 0; owner < 3; owner++ {
		_, err := e.Handle(context.Background(), protocol.StoreRequest{
			Owner: owner, Spec: spec, ChiAdd: src[owner],
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPaperExample51ServerSide reproduces the server outputs of Example
// 5.1 exactly: S1 → (27, 27, 81), S2 → (9, 1, 1), and the owner-side
// combination (1, 5, 4) identifying cancer as common.
func TestPaperExample51ServerSide(t *testing.T) {
	outs := make([][]uint64, 2)
	for phi := 0; phi < 2; phi++ {
		e := New(paperView(phi), Options{Threads: 1})
		storePaperShares(t, e, phi)
		reply, err := e.Handle(context.Background(), protocol.PSIRequest{Table: "diseases", QueryID: "q"})
		if err != nil {
			t.Fatal(err)
		}
		outs[phi] = reply.(protocol.PSIReply).Out
	}
	wantS1 := []uint64{27, 27, 81}
	wantS2 := []uint64{9, 1, 1}
	for i := range wantS1 {
		if outs[0][i] != wantS1[i] {
			t.Errorf("S1 out[%d] = %d, want %d", i, outs[0][i], wantS1[i])
		}
		if outs[1][i] != wantS2[i] {
			t.Errorf("S2 out[%d] = %d, want %d", i, outs[1][i], wantS2[i])
		}
	}
	// Owner-side Step 3: (27·9, 27·1, 81·1) mod 11 = (1, 5, 4).
	wantFop := []uint64{1, 5, 4}
	for i := range wantFop {
		got := modmath.MulMod(outs[0][i], outs[1][i], 11)
		if got != wantFop[i] {
			t.Errorf("fop[%d] = %d, want %d", i, got, wantFop[i])
		}
	}
}

func TestStoreValidation(t *testing.T) {
	e := New(paperView(0), Options{})
	ctx := context.Background()
	spec := protocol.TableSpec{Name: "t", B: 3, Plain: true}
	if _, err := e.Handle(ctx, protocol.StoreRequest{Owner: -1, Spec: spec, ChiAdd: []uint16{1, 2, 3}}); err == nil {
		t.Error("negative owner accepted")
	}
	if _, err := e.Handle(ctx, protocol.StoreRequest{Owner: 3, Spec: spec, ChiAdd: []uint16{1, 2, 3}}); err == nil {
		t.Error("out-of-range owner accepted")
	}
	if _, err := e.Handle(ctx, protocol.StoreRequest{Owner: 0, Spec: spec, ChiAdd: []uint16{1}}); err == nil {
		t.Error("short χ accepted")
	}
	// Non-plain table must match the system domain size.
	bad := protocol.TableSpec{Name: "t2", B: 99}
	if _, err := e.Handle(ctx, protocol.StoreRequest{Owner: 0, Spec: bad, ChiAdd: make([]uint16, 99)}); err == nil {
		t.Error("domain-size mismatch accepted")
	}
}

func TestQueryBeforeAllOwnersStored(t *testing.T) {
	e := New(paperView(0), Options{})
	ctx := context.Background()
	spec := protocol.TableSpec{Name: "t", B: 3, Plain: true}
	if _, err := e.Handle(ctx, protocol.StoreRequest{Owner: 0, Spec: spec, ChiAdd: []uint16{1, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Handle(ctx, protocol.PSIRequest{Table: "t"}); err == nil {
		t.Error("PSI with 1 of 3 owners accepted")
	}
}

func TestUnknownTableAndType(t *testing.T) {
	e := New(paperView(0), Options{})
	ctx := context.Background()
	if _, err := e.Handle(ctx, protocol.PSIRequest{Table: "ghost"}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := e.Handle(ctx, struct{ X int }{1}); err == nil {
		t.Error("unknown request type accepted")
	}
}

func TestThirdServerRejectsAdditiveOps(t *testing.T) {
	e := New(paperView(2), Options{})
	ctx := context.Background()
	for _, req := range []any{
		protocol.PSIRequest{Table: "t"},
		protocol.PSIVerifyRequest{Table: "t"},
		protocol.PSURequest{Table: "t"},
		protocol.CountRequest{Table: "t"},
		protocol.ExtremeSubmitRequest{QueryID: "q"},
		protocol.ClaimSubmitRequest{QueryID: "q"},
	} {
		if _, err := e.Handle(ctx, req); err == nil {
			t.Errorf("Shamir-only server accepted %T", req)
		}
	}
}

// TestThreadCountInvariance: the per-cell results must be identical for
// any worker-pool width (oblivious execution is deterministic).
func TestThreadCountInvariance(t *testing.T) {
	mk := func(threads int) []uint64 {
		e := New(paperView(0), Options{Threads: threads})
		storePaperShares(t, e, 0)
		reply, err := e.Handle(context.Background(), protocol.PSIRequest{Table: "diseases", QueryID: "q"})
		if err != nil {
			t.Fatal(err)
		}
		return reply.(protocol.PSIReply).Out
	}
	base := mk(1)
	for _, n := range []int{2, 3, 5, 8} {
		got := mk(n)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("threads=%d: out[%d] = %d, want %d", n, i, got[i], base[i])
			}
		}
	}
}

// TestPSUMaskAgreementAcrossServers: both servers must derive identical
// PSU masks for the same query id regardless of their thread counts
// (Equation 18's correctness depends on it).
func TestPSUMaskAgreementAcrossServers(t *testing.T) {
	// Store all-zero shares at server 0 (threads=1) and server 1
	// (threads=7). With χ shares (a, -a) the sums cancel; out0+out1 must
	// be ≡ 0 for every cell — any mask disagreement would break this.
	spec := protocol.TableSpec{Name: "z", B: 300, Plain: true}
	g := prg.New(prg.SeedFromString("psu-agree"))
	sharesA := make([][]uint16, 3)
	sharesB := make([][]uint16, 3)
	for j := range sharesA {
		a := make([]uint16, 300)
		bshare := make([]uint16, 300)
		for i := range a {
			a[i] = uint16(g.Uint64n(5))
			bshare[i] = uint16((5 - uint64(a[i])) % 5) // secret 0
		}
		sharesA[j], sharesB[j] = a, bshare
	}
	e0 := New(paperView(0), Options{Threads: 1})
	e1 := New(paperView(1), Options{Threads: 7})
	ctx := context.Background()
	for j := 0; j < 3; j++ {
		if _, err := e0.Handle(ctx, protocol.StoreRequest{Owner: j, Spec: spec, ChiAdd: sharesA[j]}); err != nil {
			t.Fatal(err)
		}
		if _, err := e1.Handle(ctx, protocol.StoreRequest{Owner: j, Spec: spec, ChiAdd: sharesB[j]}); err != nil {
			t.Fatal(err)
		}
	}
	r0, err := e0.Handle(ctx, protocol.PSURequest{Table: "z", QueryID: "q77"})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e1.Handle(ctx, protocol.PSURequest{Table: "z", QueryID: "q77"})
	if err != nil {
		t.Fatal(err)
	}
	o0 := r0.(protocol.PSUReply).Out
	o1 := r1.(protocol.PSUReply).Out
	for i := range o0 {
		if (uint64(o0[i])+uint64(o1[i]))%5 != 0 {
			t.Fatalf("cell %d: masks disagree between servers", i)
		}
	}
	// Different query ids must produce different masks (fresh randomness
	// per query).
	r2, err := e0.Handle(ctx, protocol.PSURequest{Table: "z", QueryID: "q78"})
	if err != nil {
		t.Fatal(err)
	}
	o2 := r2.(protocol.PSUReply).Out
	diff := 0
	for i := range o0 {
		if o0[i] != o2[i] {
			diff++
		}
	}
	// All-zero sums hide masks; instead check on raw masked values: with
	// secret 0 everything is 0. So instead assert determinism: same qid
	// twice gives identical output.
	r3, _ := e0.Handle(ctx, protocol.PSURequest{Table: "z", QueryID: "q77"})
	o3 := r3.(protocol.PSUReply).Out
	for i := range o0 {
		if o0[i] != o3[i] {
			t.Fatalf("PSU not deterministic for fixed query id at cell %d", i)
		}
	}
	_ = diff
}

func TestExtremeSubmitWithoutAnnouncer(t *testing.T) {
	e := New(paperView(0), Options{})
	ctx := context.Background()
	for owner := 0; owner < 3; owner++ {
		_, err := e.Handle(ctx, protocol.ExtremeSubmitRequest{
			QueryID: "q", Owner: owner, VShare: []byte{byte(owner + 1)},
		})
		if owner < 2 && err != nil {
			t.Fatalf("submit %d: %v", owner, err)
		}
		if owner == 2 && err == nil {
			t.Error("final submit without announcer should fail")
		}
	}
}

func TestSubsetPSIRejectsOutOfRangeCell(t *testing.T) {
	e := New(paperView(0), Options{})
	storePaperShares(t, e, 0)
	_, err := e.Handle(context.Background(), protocol.PSIRequest{
		Table: "diseases", Cells: []uint32{5},
	})
	if err == nil {
		t.Error("out-of-range subset cell accepted")
	}
}

func TestDropTable(t *testing.T) {
	e := New(paperView(0), Options{})
	storePaperShares(t, e, 0)
	if _, err := e.Handle(context.Background(), protocol.DropRequest{Table: "diseases"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Handle(context.Background(), protocol.PSIRequest{Table: "diseases"}); err == nil {
		t.Error("dropped table still queryable")
	}
}

// fakeCaller asserts the engine never calls unexpected peers.
type fakeCaller struct{ calls []string }

func (f *fakeCaller) Call(_ context.Context, addr string, _ any) (any, error) {
	f.calls = append(f.calls, addr)
	return protocol.AnnounceReply{}, nil
}

var _ transport.Caller = (*fakeCaller)(nil)

// TestNoServerToServerCalls: the engine's only outbound calls target the
// announcer — never another server (the paper's core trust property).
func TestNoServerToServerCalls(t *testing.T) {
	fc := &fakeCaller{}
	e := New(paperView(0), Options{AnnouncerAddr: "announcer", Caller: fc})
	storePaperShares(t, e, 0)
	ctx := context.Background()
	// Exercise every query type.
	e.Handle(ctx, protocol.PSIRequest{Table: "diseases", QueryID: "q"})
	e.Handle(ctx, protocol.PSURequest{Table: "diseases", QueryID: "q"})
	for owner := 0; owner < 3; owner++ {
		e.Handle(ctx, protocol.ExtremeSubmitRequest{QueryID: "x", Owner: owner, VShare: []byte{1}})
	}
	for _, addr := range fc.calls {
		if addr != "announcer" {
			t.Fatalf("server called %q — servers must only contact the announcer", addr)
		}
	}
	if len(fc.calls) == 0 {
		t.Fatal("expected an announcer call after all owners submitted")
	}
}
