package share

import (
	"fmt"

	"prism/internal/field"
	"prism/internal/prg"
)

// ShamirSplit shares secret s under a random degree-d polynomial over
// F_p, evaluated at x = 1..n. Requires n > d (otherwise the secret is
// unrecoverable) — Prism uses d=1, n=3 so a product of two shares
// (degree 2) is still recoverable from the same three servers (§3.2).
func ShamirSplit(g *prg.PRG, s field.Elem, d, n int) []field.Elem {
	if n <= d {
		panic(fmt.Sprintf("share: %d shares cannot recover degree-%d polynomial", n, d))
	}
	coeffs := make([]field.Elem, d+1)
	coeffs[0] = field.Reduce(s)
	for i := 1; i <= d; i++ {
		coeffs[i] = field.Reduce(g.Uint64())
	}
	out := make([]field.Elem, n)
	for x := 1; x <= n; x++ {
		out[x-1] = evalPoly(coeffs, field.Elem(x))
	}
	return out
}

// evalPoly evaluates the polynomial at x via Horner's rule.
func evalPoly(coeffs []field.Elem, x field.Elem) field.Elem {
	var acc field.Elem
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = field.Add(field.Mul(acc, x), coeffs[i])
	}
	return acc
}

// LagrangeWeights returns w_j such that f(0) = Σ_j w_j · f(x_j) for the
// evaluation points x = 1..n. Used by DB owners in "final processing"
// (paper §3.3 Phase 4).
func LagrangeWeights(n int) []field.Elem {
	w := make([]field.Elem, n)
	for j := 1; j <= n; j++ {
		num, den := field.Elem(1), field.Elem(1)
		for k := 1; k <= n; k++ {
			if k == j {
				continue
			}
			num = field.Mul(num, field.Neg(field.Elem(k)))                // (0 - x_k)
			den = field.Mul(den, field.Sub(field.Elem(j), field.Elem(k))) // (x_j - x_k)
		}
		w[j-1] = field.Mul(num, field.Inv(den))
	}
	return w
}

// ShamirReconstruct recovers f(0) from shares at x = 1..len(shares).
func ShamirReconstruct(shares []field.Elem) field.Elem {
	w := LagrangeWeights(len(shares))
	return ShamirReconstructWith(shares, w)
}

// ShamirReconstructWith recovers f(0) with precomputed Lagrange weights.
func ShamirReconstructWith(shares, weights []field.Elem) field.Elem {
	var acc field.Elem
	for j, s := range shares {
		acc = field.Add(acc, field.Mul(weights[j], s))
	}
	return acc
}

// ShamirSplitVector shares each secret in secrets; result[φ][i] is server
// φ's share (evaluation at x=φ+1) of secrets[i].
func ShamirSplitVector(g *prg.PRG, secrets []field.Elem, d, n int) [][]field.Elem {
	out := make([][]field.Elem, n)
	for φ := range out {
		out[φ] = make([]field.Elem, len(secrets))
	}
	coeffs := make([]field.Elem, d+1)
	for i, s := range secrets {
		coeffs[0] = field.Reduce(s)
		for k := 1; k <= d; k++ {
			coeffs[k] = field.Reduce(g.Uint64())
		}
		for x := 1; x <= n; x++ {
			out[x-1][i] = evalPoly(coeffs, field.Elem(x))
		}
	}
	return out
}

// ShamirReconstructVector recovers each position from n share vectors.
func ShamirReconstructVector(shares [][]field.Elem) []field.Elem {
	if len(shares) == 0 {
		return nil
	}
	w := LagrangeWeights(len(shares))
	out := make([]field.Elem, len(shares[0]))
	for i := range out {
		var acc field.Elem
		for φ := range shares {
			acc = field.Add(acc, field.Mul(w[φ], shares[φ][i]))
		}
		out[i] = acc
	}
	return out
}
