// Package share implements the three secret-sharing schemes Prism builds
// on (paper §3.1):
//
//   - additive secret sharing over the Abelian group Z_δ (this file),
//     used for the χ bitmaps of PSI/PSU;
//   - Shamir's secret sharing over F_p (shamir.go), used for aggregation
//     columns where shares must be multiplied;
//   - additive sharing over a large prime modulus Q held as big.Int
//     (big.go), used for the order-preserving max/median values.
package share

import (
	"fmt"

	"prism/internal/prg"
)

// AdditiveSplit splits secret s ∈ Z_delta into c shares whose sum is
// s mod delta. The first c-1 shares are uniform; the last is the
// correction term, so any c-1 shares are independent of the secret.
func AdditiveSplit(g *prg.PRG, s uint64, delta uint64, c int) []uint16 {
	if delta < 2 || delta > 1<<16 {
		panic(fmt.Sprintf("share: delta %d out of range (2, 65536]", delta))
	}
	if c < 2 {
		panic("share: need at least 2 additive shares")
	}
	out := make([]uint16, c)
	var sum uint64
	for i := 0; i < c-1; i++ {
		v := g.Uint64n(delta)
		out[i] = uint16(v)
		sum += v
	}
	out[c-1] = uint16((s%delta + delta - sum%delta) % delta)
	return out
}

// AdditiveReconstruct adds shares mod delta.
func AdditiveReconstruct(shares []uint16, delta uint64) uint64 {
	var sum uint64
	for _, v := range shares {
		sum += uint64(v)
	}
	return sum % delta
}

// AdditiveSplitVector splits each element of secrets into c share vectors:
// result[φ][i] is server φ's share of secrets[i]. Secrets must already be
// reduced mod delta (bits 0/1 for χ tables trivially are).
func AdditiveSplitVector(g *prg.PRG, secrets []uint16, delta uint64, c int) [][]uint16 {
	out := make([][]uint16, c)
	for φ := range out {
		out[φ] = make([]uint16, len(secrets))
	}
	// Fill the first c-1 share vectors with uniform noise, then correct.
	for φ := 0; φ < c-1; φ++ {
		g.FillUint16(out[φ], delta)
	}
	last := out[c-1]
	for i, s := range secrets {
		var sum uint64
		for φ := 0; φ < c-1; φ++ {
			sum += uint64(out[φ][i])
		}
		last[i] = uint16((uint64(s)%delta + delta - sum%delta) % delta)
	}
	return out
}

// AdditiveReconstructVector adds share vectors pointwise mod delta into a
// fresh slice.
func AdditiveReconstructVector(shares [][]uint16, delta uint64) []uint16 {
	if len(shares) == 0 {
		return nil
	}
	n := len(shares[0])
	out := make([]uint16, n)
	for i := 0; i < n; i++ {
		var sum uint64
		for φ := range shares {
			sum += uint64(shares[φ][i])
		}
		out[i] = uint16(sum % delta)
	}
	return out
}
