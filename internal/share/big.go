package share

import (
	"crypto/rand"
	"fmt"
	"math/big"
)

// BigSplit splits secret s (0 <= s < q) into c additive shares mod q,
// sampled from crypto/rand. Used for the order-preserving values
// v_i = F(M_i) + r_i of the max/median protocols (§6.3), which exceed
// 64 bits for realistic owner counts because deg F = m+1.
func BigSplit(s, q *big.Int, c int) ([]*big.Int, error) {
	if s.Sign() < 0 || s.Cmp(q) >= 0 {
		return nil, fmt.Errorf("share: secret out of range [0, q)")
	}
	out := make([]*big.Int, c)
	sum := new(big.Int)
	for i := 0; i < c-1; i++ {
		r, err := rand.Int(rand.Reader, q)
		if err != nil {
			return nil, fmt.Errorf("share: entropy: %w", err)
		}
		out[i] = r
		sum.Add(sum, r)
	}
	last := new(big.Int).Sub(s, sum)
	last.Mod(last, q)
	out[c-1] = last
	return out, nil
}

// BigReconstruct adds shares mod q.
func BigReconstruct(shares []*big.Int, q *big.Int) *big.Int {
	sum := new(big.Int)
	for _, s := range shares {
		sum.Add(sum, s)
	}
	return sum.Mod(sum, q)
}
