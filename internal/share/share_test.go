package share

import (
	"math/big"
	"testing"
	"testing/quick"

	"prism/internal/field"
	"prism/internal/prg"
)

func testPRG(label string) *prg.PRG {
	return prg.New(prg.SeedFromString(label))
}

func TestAdditiveRoundTrip(t *testing.T) {
	g := testPRG("add-rt")
	f := func(s uint64, cc uint8) bool {
		delta := uint64(113)
		c := int(cc%4) + 2
		s %= delta
		shares := AdditiveSplit(g, s, delta, c)
		return AdditiveReconstruct(shares, delta) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	// Sum of shares reconstructs to sum of secrets — the property Step 2
	// of PSI exploits (paper §5.1).
	g := testPRG("add-hom")
	delta := uint64(113)
	m := 10
	var want uint64
	sumShares := make([]uint64, 2)
	for j := 0; j < m; j++ {
		s := g.Uint64n(2) // bits, like χ entries
		want = (want + s) % delta
		sh := AdditiveSplit(g, s, delta, 2)
		for φ := range sumShares {
			sumShares[φ] = (sumShares[φ] + uint64(sh[φ])) % delta
		}
	}
	got := (sumShares[0] + sumShares[1]) % delta
	if got != want {
		t.Fatalf("homomorphic sum = %d want %d", got, want)
	}
}

func TestAdditiveShareUniformity(t *testing.T) {
	// A single share must be (statistically) independent of the secret:
	// share distribution for secret 0 vs 1 should both be ~uniform.
	g := testPRG("add-unif")
	delta := uint64(5)
	counts := make([]int, delta)
	for i := 0; i < 10000; i++ {
		sh := AdditiveSplit(g, uint64(i%2), delta, 2)
		counts[sh[1]]++ // the correction share
	}
	for v, c := range counts {
		if c < 1600 || c > 2400 { // expect 2000 each
			t.Errorf("share value %d count %d not uniform", v, c)
		}
	}
}

func TestAdditiveVectorMatchesScalar(t *testing.T) {
	g := testPRG("add-vec")
	delta := uint64(113)
	secrets := make([]uint16, 1000)
	for i := range secrets {
		secrets[i] = uint16(g.Uint64n(delta))
	}
	shares := AdditiveSplitVector(g, secrets, delta, 3)
	rec := AdditiveReconstructVector(shares, delta)
	for i := range secrets {
		if rec[i] != secrets[i] {
			t.Fatalf("vector reconstruct mismatch at %d: %d != %d", i, rec[i], secrets[i])
		}
	}
}

func TestAdditivePanics(t *testing.T) {
	g := testPRG("panics")
	mustPanic(t, func() { AdditiveSplit(g, 1, 1, 2) })
	mustPanic(t, func() { AdditiveSplit(g, 1, 1<<17, 2) })
	mustPanic(t, func() { AdditiveSplit(g, 1, 113, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestShamirRoundTrip(t *testing.T) {
	g := testPRG("shamir-rt")
	f := func(s uint64) bool {
		s = field.Reduce(s)
		shares := ShamirSplit(g, s, 1, 3)
		return ShamirReconstruct(shares) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestShamirDegreeTwoFromProduct(t *testing.T) {
	// The PSI-sum core (§6.1 Step 4): multiplying two degree-1 share
	// vectors pointwise yields degree-2 shares of the product, which
	// reconstruct from 3 points.
	g := testPRG("shamir-mul")
	f := func(a, b uint64) bool {
		a, b = field.Reduce(a), field.Reduce(b)
		sa := ShamirSplit(g, a, 1, 3)
		sb := ShamirSplit(g, b, 1, 3)
		prod := make([]field.Elem, 3)
		for i := range prod {
			prod[i] = field.Mul(sa[i], sb[i])
		}
		return ShamirReconstruct(prod) == field.Mul(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShamirSumOfProducts(t *testing.T) {
	// Full §6.1 aggregation shape: Σ_j x_j·z over m owners, done on shares.
	g := testPRG("shamir-sop")
	m := 7
	xs := make([]uint64, m)
	var want field.Elem
	z := uint64(1)
	sz := ShamirSplit(g, z, 1, 3)
	acc := make([]field.Elem, 3)
	for j := 0; j < m; j++ {
		xs[j] = g.Uint64n(1 << 40)
		sx := ShamirSplit(g, xs[j], 1, 3)
		for φ := 0; φ < 3; φ++ {
			acc[φ] = field.Add(acc[φ], field.Mul(sx[φ], sz[φ]))
		}
		want = field.Add(want, field.Reduce(xs[j]))
	}
	if got := ShamirReconstruct(acc); got != want {
		t.Fatalf("sum of products = %d want %d", got, want)
	}
	// With z = 0 the result must vanish regardless of xs.
	sz0 := ShamirSplit(g, 0, 1, 3)
	acc0 := make([]field.Elem, 3)
	for j := 0; j < m; j++ {
		sx := ShamirSplit(g, xs[j], 1, 3)
		for φ := 0; φ < 3; φ++ {
			acc0[φ] = field.Add(acc0[φ], field.Mul(sx[φ], sz0[φ]))
		}
	}
	if got := ShamirReconstruct(acc0); got != 0 {
		t.Fatalf("zero selector leaked value %d", got)
	}
}

func TestShamirTwoOfThreeInsufficientForDegree2(t *testing.T) {
	// Reconstructing a degree-2 sharing from only 2 points must (in
	// general) give the wrong answer — this is why Prism needs 3 servers
	// for aggregation queries (§3.2).
	g := testPRG("shamir-2of3")
	wrong := 0
	for i := 0; i < 50; i++ {
		a, b := field.Reduce(g.Uint64()), field.Reduce(g.Uint64())
		sa := ShamirSplit(g, a, 1, 3)
		sb := ShamirSplit(g, b, 1, 3)
		prod := []field.Elem{field.Mul(sa[0], sb[0]), field.Mul(sa[1], sb[1])}
		if ShamirReconstruct(prod) != field.Mul(a, b) {
			wrong++
		}
	}
	if wrong < 45 {
		t.Fatalf("2-share reconstruction of degree-2 worked %d/50 times", 50-wrong)
	}
}

func TestLagrangeWeightsKnown(t *testing.T) {
	// n=2: f(0) = 2f(1) - f(2); n=3: f(0) = 3f(1) - 3f(2) + f(3).
	w2 := LagrangeWeights(2)
	if field.ToInt64(w2[0]) != 2 || field.ToInt64(w2[1]) != -1 {
		t.Errorf("w2 = [%d %d] want [2 -1]", field.ToInt64(w2[0]), field.ToInt64(w2[1]))
	}
	w3 := LagrangeWeights(3)
	if field.ToInt64(w3[0]) != 3 || field.ToInt64(w3[1]) != -3 || field.ToInt64(w3[2]) != 1 {
		t.Errorf("w3 = [%d %d %d] want [3 -3 1]",
			field.ToInt64(w3[0]), field.ToInt64(w3[1]), field.ToInt64(w3[2]))
	}
}

func TestShamirVectorMatchesScalar(t *testing.T) {
	g := testPRG("shamir-vec")
	secrets := make([]field.Elem, 500)
	for i := range secrets {
		secrets[i] = field.Reduce(g.Uint64())
	}
	shares := ShamirSplitVector(g, secrets, 1, 3)
	rec := ShamirReconstructVector(shares)
	for i := range secrets {
		if rec[i] != secrets[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestBigRoundTrip(t *testing.T) {
	q := new(big.Int).Lsh(big.NewInt(1), 256)
	q = q.Sub(q, big.NewInt(189)) // 2^256 - 189 is prime
	g := testPRG("big-rt")
	for i := 0; i < 20; i++ {
		// Build a ~250-bit secret deterministically from the PRG.
		s := new(big.Int)
		for w := 0; w < 4; w++ {
			s.Lsh(s, 62)
			s.Or(s, new(big.Int).SetUint64(g.Uint64()>>2))
		}
		s.Mod(s, q)
		shares, err := BigSplit(s, q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if BigReconstruct(shares, q).Cmp(s) != 0 {
			t.Fatalf("big reconstruct mismatch for %v", s)
		}
	}
}

func TestBigSplitRejectsOutOfRange(t *testing.T) {
	q := big.NewInt(1000)
	if _, err := BigSplit(big.NewInt(1000), q, 2); err == nil {
		t.Fatal("expected range error for s == q")
	}
	if _, err := BigSplit(big.NewInt(-1), q, 2); err == nil {
		t.Fatal("expected range error for s < 0")
	}
}

func TestBigHomomorphism(t *testing.T) {
	q := new(big.Int).SetUint64(1<<62 - 57)
	a, b := big.NewInt(123456789), big.NewInt(987654321)
	sa, _ := BigSplit(a, q, 2)
	sb, _ := BigSplit(b, q, 2)
	sum := []*big.Int{
		new(big.Int).Add(sa[0], sb[0]),
		new(big.Int).Add(sa[1], sb[1]),
	}
	want := new(big.Int).Add(a, b)
	if BigReconstruct(sum, q).Cmp(want) != 0 {
		t.Fatal("additive homomorphism fails for big shares")
	}
}

func BenchmarkAdditiveSplitVector(b *testing.B) {
	g := testPRG("bench")
	secrets := make([]uint16, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AdditiveSplitVector(g, secrets, 113, 2)
	}
}

func BenchmarkShamirSplitVector(b *testing.B) {
	g := testPRG("bench")
	secrets := make([]field.Elem, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShamirSplitVector(g, secrets, 1, 3)
	}
}
