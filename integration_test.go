package prism

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"prism/internal/transport"
)

// randomSystem builds a system with random integer data for m owners and
// returns the plaintext ground truth alongside.
type groundTruth struct {
	intersection map[uint64]bool
	union        map[uint64]bool
	sums         map[uint64]uint64 // per cell, over all owners, col "v"
	counts       map[uint64]uint64
	maxs         map[uint64]uint64
	mins         map[uint64]uint64
}

func randomSystem(t testing.TB, m int, domainSize uint64, tuplesPerOwner int, seed int64, cfgMod func(*Config)) (*System, *groundTruth) {
	t.Helper()
	dom, err := IntDomain(1, domainSize)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Owners:     m,
		Domain:     dom,
		AggColumns: []string{"v"},
		// Bounds median's per-owner totals too (tuples × value range).
		MaxAggValue: uint64(tuplesPerOwner+1) * 1000,
		Verify:      true,
		Seed:        [32]byte{byte(seed), byte(seed >> 8), 7},
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	sys, err := NewLocalSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	gt := &groundTruth{
		intersection: make(map[uint64]bool),
		union:        make(map[uint64]bool),
		sums:         make(map[uint64]uint64),
		counts:       make(map[uint64]uint64),
		maxs:         make(map[uint64]uint64),
		mins:         make(map[uint64]uint64),
	}
	perOwner := make([]map[uint64]bool, m)
	for j := 0; j < m; j++ {
		perOwner[j] = make(map[uint64]bool)
		var rows []Row
		for i := 0; i < tuplesPerOwner; i++ {
			key := uint64(rng.Int63n(int64(domainSize))) + 1
			val := uint64(rng.Int63n(1000))
			rows = append(rows, Row{IntKey: key, Aggs: map[string]uint64{"v": val}})
			cell := key - 1
			perOwner[j][cell] = true
			gt.union[cell] = true
			gt.sums[cell] += val
			gt.counts[cell]++
			if cur, ok := gt.maxs[cell]; !ok || val > cur {
				gt.maxs[cell] = val
			}
			if cur, ok := gt.mins[cell]; !ok || val < cur {
				gt.mins[cell] = val
			}
		}
		// Plant one guaranteed-common key so the intersection is never
		// empty.
		common := uint64(1)
		rows = append(rows, Row{IntKey: common, Aggs: map[string]uint64{"v": 500}})
		perOwner[j][common-1] = true
		gt.union[common-1] = true
		gt.sums[common-1] += 500
		gt.counts[common-1]++
		if cur, ok := gt.maxs[common-1]; !ok || 500 > cur {
			gt.maxs[common-1] = 500
		}
		if cur, ok := gt.mins[common-1]; !ok || 500 < cur {
			gt.mins[common-1] = 500
		}
		if err := sys.Owner(j).Load(rows); err != nil {
			t.Fatal(err)
		}
	}
	for c := range gt.union {
		all := true
		for j := 0; j < m; j++ {
			if !perOwner[j][c] {
				all = false
				break
			}
		}
		if all {
			gt.intersection[c] = true
		}
	}
	if _, err := sys.OutsourceAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sys, gt
}

func cellsToSet(cells []uint64) map[uint64]bool {
	out := make(map[uint64]bool, len(cells))
	for _, c := range cells {
		out[c] = true
	}
	return out
}

func sameSet(t *testing.T, what string, got map[uint64]bool, want map[uint64]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d cells, want %d", what, len(got), len(want))
	}
	for c := range want {
		if !got[c] {
			t.Fatalf("%s: missing cell %d", what, c)
		}
	}
}

// TestRandomPSIMatchesPlaintext cross-checks PSI against the plaintext
// intersection for several owner counts and densities.
func TestRandomPSIMatchesPlaintext(t *testing.T) {
	for _, m := range []int{2, 3, 5, 8} {
		sys, gt := randomSystem(t, m, 200, 60, int64(100+m), nil)
		res, err := sys.PSI(context.Background())
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		sameSet(t, "PSI", cellsToSet(res.Cells), gt.intersection)
	}
}

func TestRandomPSUMatchesPlaintext(t *testing.T) {
	for _, m := range []int{2, 4, 7} {
		sys, gt := randomSystem(t, m, 150, 40, int64(200+m), nil)
		res, err := sys.PSU(context.Background())
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		sameSet(t, "PSU", cellsToSet(res.Cells), gt.union)
	}
}

func TestRandomCountsMatchPlaintext(t *testing.T) {
	sys, gt := randomSystem(t, 5, 100, 30, 300, nil)
	pc, err := sys.PSICount(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pc.Count != len(gt.intersection) {
		t.Errorf("PSI count %d, want %d", pc.Count, len(gt.intersection))
	}
	uc, err := sys.PSUCount(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if uc.Count != len(gt.union) {
		t.Errorf("PSU count %d, want %d", uc.Count, len(gt.union))
	}
}

func TestRandomPSISumMatchesPlaintext(t *testing.T) {
	sys, gt := randomSystem(t, 4, 120, 50, 400, nil)
	res, err := sys.PSISum(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range res.Cells {
		got, _ := res.Sum("v", cell)
		if got != gt.sums[cell] {
			t.Errorf("sum at %d = %d, want %d", cell, got, gt.sums[cell])
		}
	}
}

func TestRandomPSUSumMatchesPlaintext(t *testing.T) {
	sys, gt := randomSystem(t, 3, 80, 40, 500, nil)
	res, err := sys.PSUSum(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(gt.union) {
		t.Fatalf("union size %d want %d", len(res.Cells), len(gt.union))
	}
	for _, cell := range res.Cells {
		got, _ := res.Sum("v", cell)
		if got != gt.sums[cell] {
			t.Errorf("PSU sum at %d = %d, want %d", cell, got, gt.sums[cell])
		}
	}
}

func TestRandomPSIAvgMatchesPlaintext(t *testing.T) {
	sys, gt := randomSystem(t, 4, 120, 50, 600, nil)
	res, err := sys.PSIAvg(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range res.Cells {
		got, ok := res.Avg("v", cell)
		want := float64(gt.sums[cell]) / float64(gt.counts[cell])
		if !ok || got != want {
			t.Errorf("avg at %d = %f, want %f", cell, got, want)
		}
	}
}

func TestRandomPSIMaxMinMatchPlaintext(t *testing.T) {
	sys, gt := randomSystem(t, 3, 60, 25, 700, nil)
	res, err := sys.PSIMax(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	for cell, pc := range res.PerCell {
		if pc.Value != gt.maxs[cell] {
			t.Errorf("max at %d = %d, want %d", cell, pc.Value, gt.maxs[cell])
		}
		if len(pc.Owners) == 0 {
			t.Errorf("max at %d has no owner", cell)
		}
	}
	resMin, err := sys.PSIMin(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	for cell, pc := range resMin.PerCell {
		if pc.Value != gt.mins[cell] {
			t.Errorf("min at %d = %d, want %d", cell, pc.Value, gt.mins[cell])
		}
	}
}

// TestMedianOddEven checks the §6.4 median for both parities of m,
// against a direct computation over per-owner totals.
func TestMedianOddEven(t *testing.T) {
	for _, m := range []int{3, 4, 5, 6} {
		sys, _ := randomSystem(t, m, 50, 20, int64(800+m), nil)
		res, err := sys.PSIMedian(context.Background(), "v")
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for cell, pc := range res.PerCell {
			// Ground truth: median of per-owner sums at the cell.
			var totals []uint64
			for j := 0; j < m; j++ {
				d := sys.Owner(j).Engine().Data()
				var tot uint64
				for i, c := range d.Cells {
					if c == cell {
						tot += d.Aggs["v"][i]
					}
				}
				totals = append(totals, tot)
			}
			sort.Slice(totals, func(a, b int) bool { return totals[a] < totals[b] })
			if m%2 == 1 {
				if pc.Value != totals[m/2] {
					t.Errorf("m=%d cell %d: median %d, want %d", m, cell, pc.Value, totals[m/2])
				}
			} else {
				want := (totals[m/2-1] + totals[m/2]) / 2
				if pc.Value != want {
					t.Errorf("m=%d cell %d: median %d, want %d (pair %v)", m, cell, pc.Value, want, pc.MedianPair)
				}
				if len(pc.MedianPair) != 2 || pc.MedianPair[0] != totals[m/2-1] || pc.MedianPair[1] != totals[m/2] {
					t.Errorf("m=%d cell %d: median pair %v, want [%d %d]", m, cell, pc.MedianPair, totals[m/2-1], totals[m/2])
				}
			}
		}
	}
}

// TestMultiColumnAggregation exercises the Table 12 path: one query
// aggregating several columns at once.
func TestMultiColumnAggregation(t *testing.T) {
	dom, _ := IntDomain(1, 50)
	sys, err := NewLocalSystem(Config{
		Owners:      3,
		Domain:      dom,
		AggColumns:  []string{"a", "b", "c", "d"},
		MaxAggValue: 100,
		Verify:      true,
		Seed:        [32]byte{42},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{}
	for j := 0; j < 3; j++ {
		rows := []Row{{IntKey: 7, Aggs: map[string]uint64{
			"a": uint64(j + 1), "b": uint64(2 * (j + 1)), "c": 10, "d": uint64(j),
		}}}
		for col, v := range rows[0].Aggs {
			want[col] += v
		}
		if err := sys.Owner(j).Load(rows); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.OutsourceAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := sys.PSISum(context.Background(), "a", "b", "c", "d")
	if err != nil {
		t.Fatal(err)
	}
	cell := uint64(6) // key 7 in domain starting at 1
	for col, w := range want {
		got, ok := res.Sum(col, cell)
		if !ok || got != w {
			t.Errorf("sum(%s) = %d, want %d", col, got, w)
		}
	}
}

// TestEncodeWireMode runs the full stack with forced gob round-trips.
func TestEncodeWireMode(t *testing.T) {
	sys, gt := randomSystem(t, 3, 64, 20, 900, func(c *Config) { c.EncodeWire = true })
	res, err := sys.PSI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, "PSI over wire-encoded transport", cellsToSet(res.Cells), gt.intersection)
	sum, err := sys.PSISum(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range sum.Cells {
		if got, _ := sum.Sum("v", cell); got != gt.sums[cell] {
			t.Errorf("wire-encoded sum mismatch at %d", cell)
		}
	}
}

// TestDiskBackedMode runs with servers spilling shares to disk and
// fetching per query; fetch time must be observed.
func TestDiskBackedMode(t *testing.T) {
	dir := t.TempDir()
	sys, gt := randomSystem(t, 3, 128, 30, 1000, func(c *Config) { c.DiskDir = dir })
	res, err := sys.PSI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, "disk-backed PSI", cellsToSet(res.Cells), gt.intersection)
	if res.Stats.ServerFetchNS == 0 {
		t.Error("disk-backed mode reported zero fetch time")
	}
	// Aggregation reads Shamir columns from disk too.
	sum, err := sys.PSISum(context.Background(), "v")
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range sum.Cells {
		if got, _ := sum.Sum("v", cell); got != gt.sums[cell] {
			t.Errorf("disk-backed sum mismatch at %d", cell)
		}
	}
}

// TestBucketizedPSIMatchesFlatPSI: §6.6 must return exactly the flat PSI
// answer while visiting fewer cells on sparse data.
func TestBucketizedPSIMatchesFlatPSI(t *testing.T) {
	sys, gt := randomSystem(t, 3, 4096, 30, 1100, nil)
	if err := sys.OutsourceBucketTrees(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	res, err := sys.BucketizedPSI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, "bucketized PSI", cellsToSet(res.Cells), gt.intersection)
	if res.Visited >= res.Flat {
		t.Errorf("sparse data visited %d of %d cells — no pruning", res.Visited, res.Flat)
	}
	if res.Rounds < 2 {
		t.Errorf("expected multi-round traversal, got %d", res.Rounds)
	}
}

// TestBucketizedPSISharded: the bucket-tree levels now ride the sharded
// store path, so the O(b) leaf level uploads as bounded windows — under
// a transport frame cap that a monolithic leaf upload would burst — and
// the traversal still returns exactly the flat PSI answer. The
// disk-backed variant additionally streams every level's windows
// through the chunked segment store.
func TestBucketizedPSISharded(t *testing.T) {
	restore := transport.SetFrameLimit(4 << 10) // leaf level b=4096 → >8 KiB frames monolithic
	defer restore()
	for _, disk := range []bool{false, true} {
		name := map[bool]string{false: "mem", true: "disk"}[disk]
		t.Run(name, func(t *testing.T) {
			// 64-cell windows keep even the verify+agg main-table frames
			// under the cap; a monolithic leaf-level upload (4096 χ cells
			// ≈ 8 KiB) would burst it.
			sys, gt := randomSystem(t, 3, 4096, 30, 1100, func(c *Config) {
				c.ShardCells = 64
				c.EncodeWire = true
				if disk {
					c.DiskDir = t.TempDir()
					c.ChunkCells = 64
					c.HotChunks = 1 << 16
				}
			})
			if err := sys.OutsourceBucketTrees(context.Background(), 8); err != nil {
				t.Fatal(err)
			}
			res, err := sys.BucketizedPSI(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "sharded bucketized PSI", cellsToSet(res.Cells), gt.intersection)
			if res.Visited >= res.Flat {
				t.Errorf("sparse data visited %d of %d cells — no pruning", res.Visited, res.Flat)
			}
		})
	}
}

// TestManyOwners pushes the owner count to 40 (Exp 2 territory) on a
// small domain.
func TestManyOwners(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys, gt := randomSystem(t, 40, 64, 16, 1200, nil)
	res, err := sys.PSI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, "PSI with 40 owners", cellsToSet(res.Cells), gt.intersection)
	cnt, err := sys.PSICount(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count != len(gt.intersection) {
		t.Errorf("count %d want %d", cnt.Count, len(gt.intersection))
	}
}

// TestEmptyIntersection: disjoint owners yield an empty PSI and a zero
// count, while PSU still sees everything.
func TestEmptyIntersection(t *testing.T) {
	dom, _ := IntDomain(1, 100)
	sys, err := NewLocalSystem(Config{
		Owners: 3, Domain: dom, Verify: true, Seed: [32]byte{9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		// Owner j holds keys in its own disjoint decade.
		rows := []Row{
			{IntKey: uint64(10*j + 1)},
			{IntKey: uint64(10*j + 2)},
		}
		if err := sys.Owner(j).Load(rows); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.OutsourceAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := sys.PSI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 0 {
		t.Errorf("disjoint PSI returned %v", res.Values)
	}
	cnt, err := sys.PSICount(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count != 0 {
		t.Errorf("disjoint count = %d", cnt.Count)
	}
	uni, err := sys.PSU(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(uni.Cells) != 6 {
		t.Errorf("union size %d, want 6", len(uni.Cells))
	}
}

// TestIdenticalOwners: full overlap — intersection equals union.
func TestIdenticalOwners(t *testing.T) {
	dom, _ := IntDomain(1, 32)
	sys, err := NewLocalSystem(Config{Owners: 4, Domain: dom, Verify: true, Seed: [32]byte{17}})
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{{IntKey: 3}, {IntKey: 17}, {IntKey: 32}}
	for j := 0; j < 4; j++ {
		if err := sys.Owner(j).Load(rows); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.OutsourceAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	psi, err := sys.PSI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	psu, err := sys.PSU(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(psi.Cells) != 3 || len(psu.Cells) != 3 {
		t.Errorf("PSI %d PSU %d, want 3 and 3", len(psi.Cells), len(psu.Cells))
	}
}

// TestRepeatedExtremeQueries: re-running the same max query must give
// fresh, consistent answers (query ids must not collide with finished
// server-side round state).
func TestRepeatedExtremeQueries(t *testing.T) {
	sys, gt := randomSystem(t, 3, 60, 20, 1300, nil)
	for i := 0; i < 3; i++ {
		res, err := sys.PSIMax(context.Background(), "v")
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		for cell, pc := range res.PerCell {
			if pc.Value != gt.maxs[cell] {
				t.Fatalf("run %d: max at %d = %d, want %d", i, cell, pc.Value, gt.maxs[cell])
			}
		}
	}
}

// TestLoadRejectsOutOfDomain: rows outside the public domain fail fast.
func TestLoadRejectsOutOfDomain(t *testing.T) {
	dom, _ := IntDomain(10, 20)
	sys, err := NewLocalSystem(Config{Owners: 2, Domain: dom, Seed: [32]byte{3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Owner(0).Load([]Row{{IntKey: 9}}); err == nil {
		t.Error("below-domain key accepted")
	}
	if err := sys.Owner(0).Load([]Row{{IntKey: 21}}); err == nil {
		t.Error("above-domain key accepted")
	}
}

// TestConfigValidation covers constructor error paths.
func TestConfigValidation(t *testing.T) {
	dom, _ := IntDomain(1, 10)
	if _, err := NewLocalSystem(Config{Owners: 1, Domain: dom}); err == nil {
		t.Error("1 owner accepted")
	}
	if _, err := NewLocalSystem(Config{Owners: 3}); err == nil {
		t.Error("nil domain accepted")
	}
}
