package prism

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLIEndToEnd builds the four deployment binaries and drives a full
// TCP deployment through them: init → announcer → 3 servers → 2 owners
// outsourcing CSVs → PSI and PSI-sum queries. This is the cmd-level
// integration test of the README's deployment recipe.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips subprocess e2e")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	initBin := build("prism-init")
	serverBin := build("prism-server")
	annBin := build("prism-announcer")
	ownerBin := build("prism-owner")

	work := t.TempDir()
	views := filepath.Join(work, "views")

	// prism-init
	out, err := exec.Command(initBin,
		"-owners", "2", "-domain", "100", "-maxagg", "100000",
		"-seed", "a1b2c3", "-out", views).CombinedOutput()
	if err != nil {
		t.Fatalf("prism-init: %v\n%s", err, out)
	}

	freePort := func() int {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		return ln.Addr().(*net.TCPAddr).Port
	}
	annPort := freePort()
	srvPorts := []int{freePort(), freePort(), freePort()}

	startDaemon := func(bin string, args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", bin, err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		return cmd
	}
	startDaemon(annBin, "-view", filepath.Join(views, "announcer.view"),
		"-listen", fmt.Sprintf("127.0.0.1:%d", annPort))
	for phi := 0; phi < 3; phi++ {
		startDaemon(serverBin,
			"-view", filepath.Join(views, fmt.Sprintf("server-%d.view", phi)),
			"-listen", fmt.Sprintf("127.0.0.1:%d", srvPorts[phi]),
			"-announcer", fmt.Sprintf("127.0.0.1:%d", annPort))
	}
	// Wait for all listeners.
	for _, p := range append([]int{annPort}, srvPorts...) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			conn, err := net.Dial("tcp", fmt.Sprintf("127.0.0.1:%d", p))
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("port %d never came up", p)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Owner CSVs: keys 10 and 42 are common; owner-specific extras.
	csv0 := filepath.Join(work, "owner0.csv")
	csv1 := filepath.Join(work, "owner1.csv")
	os.WriteFile(csv0, []byte("key,DT\n10,100\n42,7\n77,1\n"), 0o644)
	os.WriteFile(csv1, []byte("key,DT\n10,50\n42,3\n5,9\n"), 0o644)

	serverList := fmt.Sprintf("127.0.0.1:%d,127.0.0.1:%d,127.0.0.1:%d",
		srvPorts[0], srvPorts[1], srvPorts[2])
	ownerCmd := func(index int, args ...string) string {
		base := []string{
			"-view", filepath.Join(views, "owner.view"),
			"-index", fmt.Sprint(index),
			"-servers", serverList,
		}
		out, err := exec.Command(ownerBin, append(base, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("prism-owner %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	ownerCmd(0, "-data", csv0, "-cols", "DT", "-op", "outsource", "-verify")
	ownerCmd(1, "-data", csv1, "-cols", "DT", "-op", "outsource", "-verify")

	psiOut := ownerCmd(0, "-op", "psi", "-verify")
	if !strings.Contains(psiOut, "PSI: 2 keys") {
		t.Fatalf("psi output: %s", psiOut)
	}
	if !strings.Contains(psiOut, "\n10\n") || !strings.Contains(psiOut, "\n42\n") {
		t.Fatalf("psi keys missing: %s", psiOut)
	}

	sumOut := ownerCmd(0, "-op", "sum", "-cols", "DT", "-verify")
	if !strings.Contains(sumOut, "key 10: sum(DT)=150") || !strings.Contains(sumOut, "key 42: sum(DT)=10") {
		t.Fatalf("sum output: %s", sumOut)
	}

	countOut := ownerCmd(1, "-op", "count")
	if !strings.Contains(countOut, "count: 2") {
		t.Fatalf("count output: %s", countOut)
	}

	psuOut := ownerCmd(1, "-op", "psu")
	if !strings.Contains(psuOut, "PSU: 4 keys") {
		t.Fatalf("psu output: %s", psuOut)
	}

	// Incremental update: owner 0 drops key 77 and gains key 5 (which
	// owner 1 already holds), shipped as delta windows by a fresh
	// process that adopts the table from the original CSV.
	add0 := filepath.Join(work, "owner0-add.csv")
	rm0 := filepath.Join(work, "owner0-rm.csv")
	os.WriteFile(add0, []byte("key,DT\n5,20\n"), 0o644)
	os.WriteFile(rm0, []byte("key,DT\n77,1\n"), 0o644)
	upOut := ownerCmd(0, "-data", csv0, "-cols", "DT", "-verify",
		"-add", add0, "-remove", rm0, "-op", "update")
	if !strings.Contains(upOut, "updated 2 cells") {
		t.Fatalf("update output: %s", upOut)
	}
	psiOut = ownerCmd(0, "-op", "psi", "-verify")
	if !strings.Contains(psiOut, "PSI: 3 keys") || !strings.Contains(psiOut, "\n5\n") {
		t.Fatalf("psi after update: %s", psiOut)
	}
	sumOut = ownerCmd(0, "-op", "sum", "-cols", "DT", "-verify")
	if !strings.Contains(sumOut, "key 5: sum(DT)=29") || !strings.Contains(sumOut, "key 10: sum(DT)=150") {
		t.Fatalf("sum after update: %s", sumOut)
	}
}
