package prism

import (
	"context"
	"encoding/json"
	"testing"
)

// phaseSet collects the distinct span names of a trace, failing the test
// when the trace is missing.
func phaseSet(t *testing.T, sys *System, tid string) map[string]bool {
	t.Helper()
	if tid == "" {
		t.Fatal("query reported no trace id")
	}
	tr, ok := sys.QueryTrace(tid)
	if !ok {
		t.Fatalf("QueryTrace(%q) not found", tid)
	}
	phases := make(map[string]bool)
	for _, name := range tr.Phases() {
		phases[name] = true
	}
	return phases
}

// TestQueryTraceTimeline runs traced queries on a multi-group
// disk-backed deployment and checks the assembled timelines: a PSI must
// carry owner- and server-side phases; an extreme query must also carry
// the announcer's rounds — at least five distinct phases spanning all
// three planes.
func TestQueryTraceTimeline(t *testing.T) {
	cfg := groupParityConfig(t, 2, t.TempDir(), 32)
	cfg.Trace = true
	cfg.HotColumns = true
	sys, err := NewLocalSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadGroupRows(t, sys)
	ctx := context.Background()
	if _, err := sys.OutsourceAll(ctx); err != nil {
		t.Fatal(err)
	}

	psi, err := sys.PSI(ctx)
	if err != nil {
		t.Fatal(err)
	}
	phases := phaseSet(t, sys, psi.Stats.TraceID)
	for _, want := range []string{"owner:exchange", "server:rpc:psi", "server:fetch", "server:compute"} {
		if !phases[want] {
			t.Errorf("PSI trace missing phase %q (have %v)", want, phases)
		}
	}

	max, err := sys.PSIMax(ctx, "v")
	if err != nil {
		t.Fatal(err)
	}
	phases = phaseSet(t, sys, max.Stats.TraceID)
	for _, want := range []string{
		"owner:exchange",        // owner plane
		"server:rpc:psi",        // server plane, PSI round
		"server:compute",        // server compute
		"server:announcer-wait", // server blocked on the announcer round
		"announcer:reduce",      // announcer plane, global reduce
	} {
		if !phases[want] {
			t.Errorf("extreme trace missing phase %q (have %v)", want, phases)
		}
	}
	if len(phases) < 5 {
		t.Errorf("extreme trace has %d distinct phases, want >= 5: %v", len(phases), phases)
	}

	// The timeline must dump as JSON with its spans intact.
	tr, _ := sys.QueryTrace(max.Stats.TraceID)
	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID    string
		Spans []struct{ Name, Site string }
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != max.Stats.TraceID || len(decoded.Spans) == 0 {
		t.Fatalf("trace JSON round-trip lost data: %s", raw)
	}

	// Trace ids are listed oldest-first and retrievable until evicted.
	ids := sys.QueryTraceIDs()
	if len(ids) < 2 {
		t.Fatalf("expected at least 2 retained traces, got %v", ids)
	}
}

// TestUntracedQueriesStayClean checks the default path: without
// Config.Trace no trace ids are minted, no spans ride the wire, and the
// tracer stays empty.
func TestUntracedQueriesStayClean(t *testing.T) {
	cfg := groupParityConfig(t, 2, "", 0)
	cfg.EncodeWire = true
	sys, err := NewLocalSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loadGroupRows(t, sys)
	ctx := context.Background()
	if _, err := sys.OutsourceAll(ctx); err != nil {
		t.Fatal(err)
	}
	psi, err := sys.PSI(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if psi.Stats.TraceID != "" {
		t.Errorf("untraced PSI reported trace id %q", psi.Stats.TraceID)
	}
	if len(psi.Stats.spans) != 0 {
		t.Errorf("untraced PSI carried %d spans", len(psi.Stats.spans))
	}
	if ids := sys.QueryTraceIDs(); len(ids) != 0 {
		t.Errorf("tracer retained %v for untraced queries", ids)
	}
}
