package prism

import (
	"context"
	"fmt"
	"sync"
	"time"

	"prism/internal/ownerengine"
	"prism/internal/protocol"
	"prism/internal/telemetry"
)

// SetResult is a PSI or PSU answer.
type SetResult struct {
	// Cells are the natural-order domain cells in the result set.
	Cells []uint64
	// Values are the decoded domain labels, parallel to Cells.
	Values []string
	Stats  QueryStats
}

// PSI computes the private set intersection over the common attribute
// (paper §5.1), verifying the result when the system was built with
// Verify (§5.2). The querying owner rotates round-robin; use
// Owner.PSI to query as a specific owner.
func (s *System) PSI(ctx context.Context) (*SetResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSI(ctx)
}

// PSI computes the private set intersection with this owner driving the
// query. Safe to call concurrently with any other query.
func (o *Owner) PSI(ctx context.Context) (*SetResult, error) {
	s, q := o.sys, o.eng
	ctx, tid := s.traceContext(ctx, "psi")
	res, err := q.PSI(ctx, s.table)
	if err != nil {
		return nil, err
	}
	if s.cfg.Verify {
		if err := q.VerifyPSI(ctx, s.table, res); err != nil {
			return nil, err
		}
	}
	stats := fromEngineStats(res.Stats)
	s.recordTrace(tid, stats.spans)
	return s.setResult(res.Cells, stats), nil
}

// PSU computes the private set union (paper §7). The paper defines
// result verification only for PSI, count, sum and max — PSU replies are
// therefore returned as-is even when the system runs with Verify.
func (s *System) PSU(ctx context.Context) (*SetResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSU(ctx)
}

// PSU computes the private set union with this owner driving the query.
func (o *Owner) PSU(ctx context.Context) (*SetResult, error) {
	s, q := o.sys, o.eng
	ctx, tid := s.traceContext(ctx, "psu")
	res, err := q.PSU(ctx, s.table)
	if err != nil {
		return nil, err
	}
	stats := fromEngineStats(res.Stats)
	s.recordTrace(tid, stats.spans)
	return s.setResult(res.Cells, stats), nil
}

func (s *System) setResult(cells []uint64, stats QueryStats) *SetResult {
	out := &SetResult{Cells: cells, Stats: stats}
	for _, c := range cells {
		out.Values = append(out.Values, s.cfg.Domain.Label(c))
	}
	return out
}

// CountResult is a PSI/PSU cardinality answer (§6.5). Only the count is
// revealed — not which values are in the result.
type CountResult struct {
	Count int
	Stats QueryStats
}

// PSICount reveals only |intersection| (paper §6.5).
func (s *System) PSICount(ctx context.Context) (*CountResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSICount(ctx)
}

// PSICount reveals only |intersection|, driven by this owner.
func (o *Owner) PSICount(ctx context.Context) (*CountResult, error) {
	s, q := o.sys, o.eng
	ctx, tid := s.traceContext(ctx, "psicount")
	res, err := q.Count(ctx, s.table, s.cfg.Verify)
	if err != nil {
		return nil, err
	}
	stats := fromEngineStats(res.Stats)
	s.recordTrace(tid, stats.spans)
	return &CountResult{Count: res.Count, Stats: stats}, nil
}

// PSUCount reveals only |union|.
func (s *System) PSUCount(ctx context.Context) (*CountResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSUCount(ctx)
}

// PSUCount reveals only |union|, driven by this owner.
func (o *Owner) PSUCount(ctx context.Context) (*CountResult, error) {
	s, q := o.sys, o.eng
	ctx, tid := s.traceContext(ctx, "psucount")
	res, err := q.PSUCount(ctx, s.table)
	if err != nil {
		return nil, err
	}
	stats := fromEngineStats(res.Stats)
	s.recordTrace(tid, stats.spans)
	return &CountResult{Count: res.Count, Stats: stats}, nil
}

// AggregateResult is a summary aggregation over PSI or PSU (§6.1-§6.2):
// per result-set value, the cross-owner aggregate.
type AggregateResult struct {
	// Cells is the result set (intersection or union) the aggregation
	// grouped on.
	Cells []uint64
	// Sums[col][cell] is the total of column col at the cell.
	Sums map[string]map[uint64]uint64
	// Counts[cell] is the tuple count (for averages).
	Counts map[uint64]uint64
	Stats  QueryStats
}

// Sum returns the aggregate for a column at a cell.
func (r *AggregateResult) Sum(col string, cell uint64) (uint64, bool) {
	v, ok := r.Sums[col][cell]
	return v, ok
}

// Avg returns the average for a column at a cell.
func (r *AggregateResult) Avg(col string, cell uint64) (float64, bool) {
	sum, ok := r.Sums[col][cell]
	if !ok {
		return 0, false
	}
	cnt, ok := r.Counts[cell]
	if !ok || cnt == 0 {
		return 0, false
	}
	return float64(sum) / float64(cnt), true
}

// PSISum computes the PSI-sum query of §6.1 over one or more aggregation
// columns (Table 12 exercises 1-4 columns in one query).
func (s *System) PSISum(ctx context.Context, cols ...string) (*AggregateResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSISum(ctx, cols...)
}

// PSISum computes the PSI-sum query driven by this owner.
func (o *Owner) PSISum(ctx context.Context, cols ...string) (*AggregateResult, error) {
	return o.aggregate(ctx, true, false, cols)
}

// PSIAvg computes the PSI-average query of §6.2 (sum and count columns in
// one round).
func (s *System) PSIAvg(ctx context.Context, cols ...string) (*AggregateResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSIAvg(ctx, cols...)
}

// PSIAvg computes the PSI-average query driven by this owner.
func (o *Owner) PSIAvg(ctx context.Context, cols ...string) (*AggregateResult, error) {
	return o.aggregate(ctx, true, true, cols)
}

// PSUSum aggregates over the union instead of the intersection (§2(3)).
func (s *System) PSUSum(ctx context.Context, cols ...string) (*AggregateResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSUSum(ctx, cols...)
}

// PSUSum aggregates over the union, driven by this owner.
func (o *Owner) PSUSum(ctx context.Context, cols ...string) (*AggregateResult, error) {
	return o.aggregate(ctx, false, false, cols)
}

// PSUAvg averages over the union.
func (s *System) PSUAvg(ctx context.Context, cols ...string) (*AggregateResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSUAvg(ctx, cols...)
}

// PSUAvg averages over the union, driven by this owner.
func (o *Owner) PSUAvg(ctx context.Context, cols ...string) (*AggregateResult, error) {
	return o.aggregate(ctx, false, true, cols)
}

func (o *Owner) aggregate(ctx context.Context, overPSI, withCount bool, cols []string) (*AggregateResult, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("prism: aggregation needs at least one column")
	}
	s, q := o.sys, o.eng
	ctx, tid := s.traceContext(ctx, "aggregate")
	// Round 1: find the result set (§6.1 Steps 1-3).
	var cells []uint64
	var stats QueryStats
	if overPSI {
		res, err := q.PSI(ctx, s.table)
		if err != nil {
			return nil, err
		}
		if s.cfg.Verify {
			if err := q.VerifyPSI(ctx, s.table, res); err != nil {
				return nil, err
			}
		}
		cells = res.Cells
		stats.add(res.Stats)
	} else {
		res, err := q.PSU(ctx, s.table)
		if err != nil {
			return nil, err
		}
		cells = res.Cells
		stats.add(res.Stats)
	}
	// Round 2: selector-weighted Shamir aggregation (§6.1 Steps 3-5).
	agg, err := q.Aggregate(ctx, s.table, cells, cols, withCount, s.cfg.Verify)
	if err != nil {
		return nil, err
	}
	stats.add(agg.Stats)
	s.recordTrace(tid, stats.spans)
	return &AggregateResult{
		Cells:  cells,
		Sums:   agg.Sums,
		Counts: agg.Counts,
		Stats:  stats,
	}, nil
}

// ExtremeResult is an exemplary aggregation (max/min/median, §6.3-§6.4)
// over the PSI result, computed per intersection value.
type ExtremeResult struct {
	Cells   []uint64
	PerCell map[uint64]ExtremeCell
	// Global is the query-global extreme across all intersection cells:
	// for max/min the winning cell's outcome, for median the median of
	// all cells' pooled per-owner values. With more than one cell it
	// comes from one extra announcer round that reduces the per-cell
	// rounds' retained masked values — the round that makes a
	// group-partitioned deployment's global answer exact without any
	// owner comparing raw values. Nil when the intersection is empty.
	Global *ExtremeCell
	// GlobalCell is the cell holding the global extreme (max/min only;
	// 0 for median, whose global answer pools across cells).
	GlobalCell uint64
	Stats      QueryStats
}

// ExtremeCell is the answer at one intersection value.
type ExtremeCell struct {
	// Value is the max/min, or the median (for an even number of owners
	// the average of the two middle per-owner values, rounded down).
	Value uint64
	// MedianPair holds the two middle values when m is even.
	MedianPair []uint64
	// Owners lists the owners holding the extreme value (§6.3 Steps
	// 5b-7); nil for median.
	Owners []int
}

// PSIMax finds, for every intersection value, the maximum of col across
// all owners and which owners hold it (paper §6.3).
func (s *System) PSIMax(ctx context.Context, col string) (*ExtremeResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSIMax(ctx, col)
}

// PSIMax runs the max query with this owner driving the PSI round.
func (o *Owner) PSIMax(ctx context.Context, col string) (*ExtremeResult, error) {
	return o.extreme(ctx, protocol.KindMax, col)
}

// PSIMin is the symmetric minimum query.
func (s *System) PSIMin(ctx context.Context, col string) (*ExtremeResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSIMin(ctx, col)
}

// PSIMin runs the min query with this owner driving the PSI round.
func (o *Owner) PSIMin(ctx context.Context, col string) (*ExtremeResult, error) {
	return o.extreme(ctx, protocol.KindMin, col)
}

// PSIMedian finds the median of the per-owner totals of col (paper §6.4).
func (s *System) PSIMedian(ctx context.Context, col string) (*ExtremeResult, error) {
	ow, err := s.nextQuerier()
	if err != nil {
		return nil, err
	}
	return ow.PSIMedian(ctx, col)
}

// PSIMedian runs the median query with this owner driving the PSI round.
func (o *Owner) PSIMedian(ctx context.Context, col string) (*ExtremeResult, error) {
	return o.extreme(ctx, protocol.KindMedian, col)
}

func (o *Owner) extreme(ctx context.Context, kind protocol.ExtremeKind, col string) (*ExtremeResult, error) {
	s, q := o.sys, o.eng
	wall := time.Now()
	ctx, tid := s.traceContext(ctx, "extreme")
	// Round 1: PSI (§6.3 Steps 1-2). Every owner learns the common cells.
	psi, err := q.PSI(ctx, s.table)
	if err != nil {
		return nil, err
	}
	if s.cfg.Verify {
		if err := q.VerifyPSI(ctx, s.table, psi); err != nil {
			return nil, err
		}
	}
	res := &ExtremeResult{Cells: psi.Cells, PerCell: make(map[uint64]ExtremeCell, len(psi.Cells))}
	var stats QueryStats
	stats.add(psi.Stats)

	// The per-cell rounds are independent protocol sessions (distinct
	// qids on the servers and the announcer), so run them pipelined with
	// bounded in-flight depth instead of one announcer round-trip per
	// cell. Session cleanup is deferred until after the global reduce:
	// the announcer's retained per-round values are its input.
	qids := make([]string, len(psi.Cells))
	defer func() {
		var wg sync.WaitGroup
		for _, qid := range qids {
			if qid == "" {
				continue
			}
			wg.Add(1)
			go func(qid string) {
				defer wg.Done()
				s.endQuery(ctx, qid)
			}(qid)
		}
		wg.Wait()
	}()
	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, extremeCellInflight)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for k, cell := range psi.Cells {
		wg.Add(1)
		go func(k int, cell uint64) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-cellCtx.Done():
				return
			}
			cellRes, cellStats, qid, err := s.extremeAtCell(cellCtx, kind, col, cell)
			mu.Lock()
			defer mu.Unlock()
			qids[k] = qid
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("prism: %s at %q: %w", kind, s.cfg.Domain.Label(cell), err)
					cancel()
				}
				return
			}
			res.PerCell[cell] = *cellRes
			stats.ServerFetchNS += cellStats.ServerFetchNS
			stats.ServerComputeNS += cellStats.ServerComputeNS
			stats.OwnerNS += cellStats.OwnerNS
			stats.Rounds += cellStats.Rounds
			stats.spans = append(stats.spans, cellStats.spans...)
		}(k, cell)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	switch {
	case len(psi.Cells) == 1:
		g := res.PerCell[psi.Cells[0]]
		res.Global, res.GlobalCell = &g, psi.Cells[0]
	case len(psi.Cells) > 1:
		if err := s.reduceExtreme(ctx, q, kind, psi.Cells, qids, res, &stats); err != nil {
			return nil, err
		}
	}
	// The per-cell rounds run pipelined, so the query's wall time is the
	// elapsed time of the whole operation — not the per-cell sum, which
	// would overstate it by the pipelining factor.
	stats.WallNS = time.Since(wall).Nanoseconds()
	if tid != "" {
		stats.TraceID = tid
		s.recordTrace(tid, stats.spans)
	}
	res.Stats = stats
	return res, nil
}

// extremeCellInflight bounds how many intersection cells run their
// extreme rounds simultaneously (the forEachShard pipelining idiom).
const extremeCellInflight = 8

// reduceExtreme runs the query-global final round: the announcer folds
// the per-cell rounds' retained masked values into one outcome, the
// querier unmasks it. For max/min the winning sub-round identifies the
// winning cell (and thereby the winning owners, already resolved by
// that cell's claims round); for median the pooled masked values yield
// the global median directly.
func (s *System) reduceExtreme(ctx context.Context, q *ownerengine.Owner, kind protocol.ExtremeKind, cells []uint64, qids []string, res *ExtremeResult, stats *QueryStats) error {
	req := protocol.ExtremeReduceRequest{
		QueryID:     fmt.Sprintf("extred-%s-%s-%d", s.table, kind, s.qidNonce.Add(1)),
		Kind:        kind,
		SubQueryIDs: qids,
		TraceID:     telemetry.TraceID(ctx),
	}
	rep, err := s.network.Call(ctx, "announcer", req)
	if err != nil {
		return fmt.Errorf("prism: global %s reduce: %w", kind, err)
	}
	rrep, ok := rep.(protocol.ExtremeReduceReply)
	if !ok {
		return fmt.Errorf("prism: unexpected reduce reply %T", rep)
	}
	stats.spans = append(stats.spans, rrep.Spans...)
	values, err := q.DecodeReducedExtreme(kind, rrep.Values)
	if err != nil {
		return fmt.Errorf("prism: global %s reduce: %w", kind, err)
	}
	res.Global = decodeExtreme(kind, values)
	stats.Rounds++
	if kind == protocol.KindMedian {
		return nil
	}
	if !rrep.HasWinner || rrep.WinnerSub < 0 || rrep.WinnerSub >= len(cells) {
		return fmt.Errorf("prism: global %s reduce named no winning cell", kind)
	}
	res.GlobalCell = cells[rrep.WinnerSub]
	winner := res.PerCell[res.GlobalCell]
	if winner.Value != res.Global.Value {
		return fmt.Errorf("%w: global %s %d disagrees with winning cell's %d", ErrVerificationFailed, kind, res.Global.Value, winner.Value)
	}
	res.Global.Owners = append([]int(nil), winner.Owners...)
	return nil
}

// extremeAtCell runs the §6.3/§6.4 rounds for one intersection value.
// It orchestrates ALL owners (each must mask and submit its local value)
// regardless of which owner drove the query. The round runs entirely
// within the group owning the cell (the owner engines route by cell).
// The returned qid identifies the round's session state; the caller
// retires it — after the global reduce, which reads the announcer's
// retained per-round values.
func (s *System) extremeAtCell(ctx context.Context, kind protocol.ExtremeKind, col string, cell uint64) (*ExtremeCell, QueryStats, string, error) {
	var stats QueryStats
	// The nonce keeps concurrent and repeated queries from colliding in
	// the servers' qid-keyed session state (e.g. after a re-outsource).
	qid := fmt.Sprintf("ext-%s-%s-%d-%s-%d", s.table, col, cell, kind, s.qidNonce.Add(1))

	// Step 3: every owner masks and submits its local value.
	locals := make([]uint64, len(s.owners))
	present := make([]bool, len(s.owners))
	for i, o := range s.owners {
		v, has, err := o.eng.LocalValue(kind, col, cell)
		if err != nil {
			return nil, stats, qid, err
		}
		if !has {
			// The cell is in the intersection, so every owner must have
			// at least one tuple there.
			return nil, stats, qid, fmt.Errorf("owner %d has no tuple at intersection cell %d", i, cell)
		}
		locals[i], present[i] = v, true
		if err := o.eng.SubmitExtreme(ctx, qid, kind, cell, v); err != nil {
			return nil, stats, qid, err
		}
	}
	stats.Rounds++

	// Steps 4-5a: servers forwarded to S_a; owners fetch and decode.
	// Every owner fetches (each must know z for the claims round).
	var outcome *ExtremeCell
	for i, o := range s.owners {
		oc, err := o.eng.FetchExtreme(ctx, qid, kind, cell)
		if err != nil {
			return nil, stats, qid, err
		}
		stats.OwnerNS += oc.Stats.OwnerNS
		stats.spans = append(stats.spans, oc.Stats.Server.Spans...)
		if err := o.eng.CheckExtremeConsistency(kind, oc.Values[0], locals[i], present[i]); err != nil {
			return nil, stats, qid, err
		}
		if kind == protocol.KindMin {
			// Min consistency is against the smallest announced value.
			last := oc.Values[len(oc.Values)-1]
			if err := o.eng.CheckExtremeConsistency(kind, last, locals[i], present[i]); err != nil {
				return nil, stats, qid, err
			}
		}
		if i == 0 {
			outcome = decodeExtreme(kind, oc.Values)
		}
	}
	stats.Rounds++

	if kind == protocol.KindMedian {
		return outcome, stats, qid, nil
	}

	// Steps 5b-7: ownership claims.
	z := outcome.Value
	for i, o := range s.owners {
		if err := o.eng.SubmitClaim(ctx, qid, cell, locals[i] == z); err != nil {
			return nil, stats, qid, err
		}
	}
	claims, err := s.owners[0].eng.FetchClaims(ctx, qid, cell)
	if err != nil {
		return nil, stats, qid, err
	}
	stats.Rounds++
	for i, holds := range claims {
		if holds {
			outcome.Owners = append(outcome.Owners, i)
		}
	}
	if s.cfg.Verify && len(outcome.Owners) == 0 {
		// Max verification: someone must hold the announced extreme.
		return nil, stats, qid, fmt.Errorf("%w: no owner claims the announced %s", ErrVerificationFailed, kind)
	}
	return outcome, stats, qid, nil
}

func decodeExtreme(kind protocol.ExtremeKind, values []uint64) *ExtremeCell {
	out := &ExtremeCell{}
	switch {
	case kind == protocol.KindMedian && len(values) == 2:
		out.MedianPair = values
		out.Value = (values[0] + values[1]) / 2
	default:
		out.Value = values[0]
	}
	return out
}
