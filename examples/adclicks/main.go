// Private intersection-sum for ad attribution — the use case of Ion et
// al. [34] that motivates the paper's PSI-sum operator (§1, §6.1).
//
// An ad platform knows which customers clicked a campaign's ads; a
// merchant knows which customers bought something and for how much.
// Both want the total revenue attributable to ad clicks — neither may
// see the other's customer list. With Prism they outsource secret
// shares over a shared customer-id domain and compute PSI-sum: the sum
// of purchase amounts over exactly the clicked∩purchased customers.
//
// Run: go run ./examples/adclicks
package main

import (
	"context"
	"fmt"
	"log"

	"prism"
	"prism/internal/prg"
)

const customerDomain = 50_000

func main() {
	ctx := context.Background()
	dom, err := prism.IntDomain(1, customerDomain)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := prism.NewLocalSystem(prism.Config{
		Owners:      2,
		Domain:      dom,
		AggColumns:  []string{"spend_cents"},
		MaxAggValue: 1_000_000,
		Verify:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := prg.New(prg.SeedFromString("adclicks-demo"))

	// The ad platform: 3000 customers clicked. Click rows carry no
	// monetary value (spend 0) — the platform has no revenue data.
	clickers := map[uint64]bool{}
	var platformRows []prism.Row
	for len(platformRows) < 3000 {
		id := 1 + rng.Uint64n(customerDomain)
		if clickers[id] {
			continue
		}
		clickers[id] = true
		platformRows = append(platformRows, prism.Row{IntKey: id})
	}

	// The merchant: 2000 customers purchased; ~25% of them had clicked.
	var merchantRows []prism.Row
	seen := map[uint64]bool{}
	var expected uint64 // plaintext ground truth for the demo printout
	for len(merchantRows) < 2000 {
		var id uint64
		if rng.Uint64n(4) == 0 { // planted overlap
			id = platformRows[rng.Uint64n(uint64(len(platformRows)))].IntKey
		} else {
			id = 1 + rng.Uint64n(customerDomain)
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		spend := 500 + rng.Uint64n(20_000) // cents
		merchantRows = append(merchantRows, prism.Row{IntKey: id,
			Aggs: map[string]uint64{"spend_cents": spend}})
		if clickers[id] {
			expected += spend
		}
	}

	must(sys.Owner(0).Load(platformRows))
	must(sys.Owner(1).Load(merchantRows))
	if _, err := sys.OutsourceAll(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ad platform: %d clickers; merchant: %d purchasers (private)\n",
		len(platformRows), len(merchantRows))

	// PSI count first: how many converting customers — without learning
	// who they are would use PSICount; here the attribution report wants
	// the revenue, so run PSI-sum.
	res, err := sys.PSISum(ctx, "spend_cents")
	must(err)
	var total uint64
	for _, cell := range res.Cells {
		v, _ := res.Sum("spend_cents", cell)
		total += v
	}
	fmt.Printf("customers who clicked AND purchased: %d\n", len(res.Cells))
	fmt.Printf("attributable revenue (PSI sum):      $%d.%02d\n", total/100, total%100)
	fmt.Printf("plaintext cross-check:               $%d.%02d\n", expected/100, expected%100)
	if total != expected {
		log.Fatal("mismatch against plaintext ground truth")
	}
	fmt.Println("verified: servers behaved honestly; neither party saw the other's list")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
