// Federated deployment over real TCP — the programmatic equivalent of
// running cmd/prism-init, cmd/prism-announcer, cmd/prism-server ×3 and
// three cmd/prism-owner processes on separate machines.
//
// Scenario: three banks hold private watchlists of client ids with an
// exposure amount. Jointly they want: the clients every bank has
// flagged (PSI, verified), the combined exposure per common client
// (PSI sum), and the largest single-bank exposure with the banks that
// hold it (PSI max — the full three-round §6.3 protocol through the
// announcer), all over loopback TCP with gob-encoded frames.
//
// Run: go run ./examples/federated
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"prism/internal/announcer"
	"prism/internal/ownerengine"
	"prism/internal/params"
	"prism/internal/prg"
	"prism/internal/protocol"
	"prism/internal/serverengine"
	"prism/internal/transport"
)

const (
	numBanks   = 3
	domainSize = 10_000 // client-id space 1..10000
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// ---- initiator (cmd/prism-init) ----
	sys, err := params.Generate(params.Config{
		NumOwners:  numBanks,
		DomainSize: domainSize,
		MaxAgg:     1_000_000,
	})
	must(err)

	// ---- announcer (cmd/prism-announcer) ----
	annLn := listen()
	go transport.Serve(ctx, annLn, announcer.New(sys.ForAnnouncer()))
	fmt.Printf("announcer listening on %s\n", annLn.Addr())

	// ---- three servers (cmd/prism-server) ----
	serverAddrs := make([]string, params.NumServers)
	for phi := 0; phi < params.NumServers; phi++ {
		view, err := sys.ForServer(phi)
		must(err)
		ln := listen()
		serverAddrs[phi] = ln.Addr().String()
		eng := serverengine.New(view, serverengine.Options{
			AnnouncerAddr: "announcer",
			Caller:        transport.NewTCPClient(map[string]string{"announcer": annLn.Addr().String()}),
		})
		go transport.Serve(ctx, ln, eng)
		fmt.Printf("server S_%d listening on %s\n", phi, ln.Addr())
	}

	// ---- three bank owners (cmd/prism-owner) ----
	logical := []string{"server/0", "server/1", "server/2"}
	owners := make([]*ownerengine.Owner, numBanks)
	for j := 0; j < numBanks; j++ {
		book := map[string]string{}
		for i, l := range logical {
			book[l] = serverAddrs[i]
		}
		o, err := ownerengine.New(j, sys.ForOwner(), transport.NewTCPClient(book), logical, prg.NewSeed())
		must(err)
		owners[j] = o
	}

	// Private watchlists: client 4242 is flagged by every bank.
	rng := prg.New(prg.SeedFromString("federated-demo"))
	for j, o := range owners {
		data := &ownerengine.Data{Aggs: map[string][]uint64{"exposure": nil}}
		add := func(client, exposure uint64) {
			data.Cells = append(data.Cells, client-1)
			data.Aggs["exposure"] = append(data.Aggs["exposure"], exposure)
		}
		add(4242, 100_000*uint64(j+1)) // the common client
		for k := 0; k < 200; k++ {
			add(1+rng.Uint64n(domainSize), 1_000+rng.Uint64n(50_000))
		}
		must(o.Load(data))
		st, err := o.Outsource(ctx, ownerengine.OutsourceSpec{
			Table: "watchlist", AggCols: []string{"exposure"}, Verify: true, WithCount: true,
		})
		must(err)
		fmt.Printf("bank %d outsourced shares over TCP in %.3fs\n", j+1,
			float64(st.BuildNS+st.SplitNS+st.UploadNS)/1e9)
	}

	// ---- PSI with verification ----
	querier := owners[0]
	psi, err := querier.PSI(ctx, "watchlist")
	must(err)
	must(querier.VerifyPSI(ctx, "watchlist", psi))
	fmt.Printf("\nclients flagged by all %d banks (verified PSI): ", numBanks)
	for _, c := range psi.Cells {
		fmt.Printf("#%d ", c+1)
	}
	fmt.Println()

	// ---- PSI sum ----
	agg, err := querier.Aggregate(ctx, "watchlist", psi.Cells, []string{"exposure"}, true, true)
	must(err)
	for _, c := range psi.Cells {
		fmt.Printf("combined exposure for client #%d: $%d across %d flags\n",
			c+1, agg.Sums["exposure"][c], agg.Counts[c])
	}

	// ---- PSI max: the full §6.3 rounds over TCP ----
	for _, cell := range psi.Cells {
		qid := fmt.Sprintf("max-exposure-%d", cell)
		locals := make([]uint64, numBanks)
		for j, o := range owners {
			v, has, err := o.LocalValue(protocol.KindMax, "exposure", cell)
			must(err)
			if !has {
				log.Fatalf("bank %d missing common client", j)
			}
			locals[j] = v
			must(o.SubmitExtreme(ctx, qid, protocol.KindMax, cell, v))
		}
		out, err := querier.FetchExtreme(ctx, qid, protocol.KindMax, cell)
		must(err)
		z := out.Values[0]
		for j, o := range owners {
			must(o.CheckExtremeConsistency(protocol.KindMax, z, locals[j], true))
			must(o.SubmitClaim(ctx, qid, cell, locals[j] == z))
		}
		claims, err := querier.FetchClaims(ctx, qid, cell)
		must(err)
		var holders []int
		for j, h := range claims {
			if h {
				holders = append(holders, j+1)
			}
		}
		fmt.Printf("largest single-bank exposure for client #%d: $%d (bank(s) %v)\n",
			cell+1, z, holders)
	}
	fmt.Println("\nall rounds ran over loopback TCP; servers never contacted each other")
}

func listen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	return ln
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
