// Syndromic surveillance — the paper's §1 motivating use case.
//
// Eight organisations (pharmacies, hospitals, telehealth desks) track
// daily counts of outbreak indicators: analgesic sales, anti-allergy
// sales, telehealth respiratory calls, school-absence reports, etc.
// They want early community-wide outbreak signals:
//
//   - which indicators are elevated at EVERY organisation (PSI),
//   - the total volume behind each common indicator (PSI sum),
//   - the single worst site reading (PSI max) and a robust central
//     reading (PSI median),
//   - how many indicators are elevated anywhere (PSU count) — without
//     revealing which organisation sees what.
//
// Run: go run ./examples/syndromic
package main

import (
	"context"
	"fmt"
	"log"

	"prism"
	"prism/internal/prg"
)

var indicators = []string{
	"analgesic-sales", "antiallergy-sales", "antipyretic-sales",
	"cough-syrup-sales", "telehealth-resp-calls", "telehealth-gi-calls",
	"school-absences", "er-fever-visits", "er-rash-visits", "otc-test-kits",
}

var orgs = []string{
	"MainSt Pharmacy", "Riverside Pharmacy", "City Hospital", "County Hospital",
	"TeleHealth-North", "TeleHealth-South", "SchoolDistrict-7", "UrgentCare-East",
}

func main() {
	ctx := context.Background()
	dom, err := prism.ValueDomain(indicators...)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := prism.NewLocalSystem(prism.Config{
		Owners:      len(orgs),
		Domain:      dom,
		AggColumns:  []string{"volume"},
		MaxAggValue: 100000,
		Verify:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every organisation reports the indicators it currently sees as
	// "elevated", with the day's volume. Three indicators are elevated
	// everywhere — the outbreak signal the consortium wants to find.
	rng := prg.New(prg.SeedFromString("syndromic-demo"))
	outbreak := []string{"analgesic-sales", "telehealth-resp-calls", "er-fever-visits"}
	for j := range orgs {
		rows := make([]prism.Row, 0, 6)
		for _, ind := range outbreak {
			rows = append(rows, prism.Row{StrKey: ind,
				Aggs: map[string]uint64{"volume": 200 + rng.Uint64n(800)}})
		}
		// Plus 2-3 org-specific elevations (noise that must NOT leak).
		for k := 0; k < 2+int(rng.Uint64n(2)); k++ {
			ind := indicators[rng.Uint64n(uint64(len(indicators)))]
			rows = append(rows, prism.Row{StrKey: ind,
				Aggs: map[string]uint64{"volume": 50 + rng.Uint64n(200)}})
		}
		if err := sys.Owner(j).Load(rows); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sys.OutsourceAll(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d organisations outsourced elevated-indicator tables (%d possible indicators)\n\n",
		len(orgs), len(indicators))

	psi, err := sys.PSI(ctx)
	must(err)
	fmt.Println("indicators elevated at EVERY organisation (PSI, verified):")
	for _, v := range psi.Values {
		fmt.Printf("  ⚠ %s\n", v)
	}

	sum, err := sys.PSISum(ctx, "volume")
	must(err)
	fmt.Println("\ncommunity-wide volume behind each common indicator (PSI sum):")
	for _, cell := range sum.Cells {
		v, _ := sum.Sum("volume", cell)
		fmt.Printf("  %-22s %6d cases/sales\n", sys.DomainLabel(cell), v)
	}

	max, err := sys.PSIMax(ctx, "volume")
	must(err)
	fmt.Println("\nworst single-site reading per common indicator (PSI max):")
	for _, cell := range max.Cells {
		pc := max.PerCell[cell]
		names := make([]string, len(pc.Owners))
		for i, o := range pc.Owners {
			names[i] = orgs[o]
		}
		fmt.Printf("  %-22s %6d at %v\n", sys.DomainLabel(cell), pc.Value, names)
	}

	med, err := sys.PSIMedian(ctx, "volume")
	must(err)
	fmt.Println("\nmedian per-site volume (robust central reading, PSI median):")
	for _, cell := range med.Cells {
		fmt.Printf("  %-22s %6d\n", sys.DomainLabel(cell), med.PerCell[cell].Value)
	}

	uc, err := sys.PSUCount(ctx)
	must(err)
	fmt.Printf("\nindicators elevated at ≥1 organisation (PSU count): %d of %d\n",
		uc.Count, len(indicators))
	fmt.Println("(no organisation learned which sites reported which indicators)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
