// Quickstart: the paper's running example (Tables 1-3) end to end.
//
// Three hospitals hold private patient tables (disease, age, cost). They
// outsource secret shares to three non-communicating servers and then
// compute, without revealing their data to each other or to the servers:
//
//   - PSI over disease            → {Cancer}
//   - PSU over disease            → {Cancer, Fever, Heart}
//   - PSI/PSU counts              → 1 / 3
//   - sum & average of cost @ PSI → 1400, 280
//   - max/min of age @ PSI        → 8 (hospitals 2 & 3), 4
//   - median of per-hospital cost → 300
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"prism"
)

func main() {
	ctx := context.Background()

	// The public domain of the set attribute: every hospital knows the
	// possible disease names (paper §4, owner assumption (v)).
	dom, err := prism.ValueDomain("Cancer", "Fever", "Heart")
	if err != nil {
		log.Fatal(err)
	}

	sys, err := prism.NewLocalSystem(prism.Config{
		Owners:      3,
		Domain:      dom,
		AggColumns:  []string{"age", "cost"},
		MaxAggValue: 10000,
		Verify:      true, // catch malicious servers on every query
	})
	if err != nil {
		log.Fatal(err)
	}

	// Table 1: Hospital 1 (John 4/Cancer/100, Adam 6/Cancer/200, Mike 2/Heart/300).
	must(sys.Owner(0).Load([]prism.Row{
		{StrKey: "Cancer", Aggs: map[string]uint64{"age": 4, "cost": 100}},
		{StrKey: "Cancer", Aggs: map[string]uint64{"age": 6, "cost": 200}},
		{StrKey: "Heart", Aggs: map[string]uint64{"age": 2, "cost": 300}},
	}))
	// Table 2: Hospital 2.
	must(sys.Owner(1).Load([]prism.Row{
		{StrKey: "Cancer", Aggs: map[string]uint64{"age": 8, "cost": 100}},
		{StrKey: "Fever", Aggs: map[string]uint64{"age": 5, "cost": 70}},
		{StrKey: "Fever", Aggs: map[string]uint64{"age": 4, "cost": 50}},
	}))
	// Table 3: Hospital 3.
	must(sys.Owner(2).Load([]prism.Row{
		{StrKey: "Cancer", Aggs: map[string]uint64{"age": 8, "cost": 300}},
		{StrKey: "Cancer", Aggs: map[string]uint64{"age": 4, "cost": 700}},
		{StrKey: "Heart", Aggs: map[string]uint64{"age": 5, "cost": 500}},
	}))

	// Phase 1: secret-share and outsource (paper §3.3).
	if _, err := sys.OutsourceAll(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("three hospitals outsourced secret-shared tables to 3 servers")

	// PSI (§5.1) with result verification (§5.2).
	psi, err := sys.PSI(ctx)
	must(err)
	fmt.Printf("PSI over disease:        %v (verified)\n", psi.Values)

	// PSU (§7).
	psu, err := sys.PSU(ctx)
	must(err)
	fmt.Printf("PSU over disease:        %v\n", psu.Values)

	// Cardinalities only (§6.5) — positions stay hidden.
	pc, err := sys.PSICount(ctx)
	must(err)
	uc, err := sys.PSUCount(ctx)
	must(err)
	fmt.Printf("PSI count / PSU count:   %d / %d\n", pc.Count, uc.Count)

	// Summary aggregation over PSI (§6.1, §6.2).
	agg, err := sys.PSIAvg(ctx, "cost")
	must(err)
	for _, cell := range agg.Cells {
		sum, _ := agg.Sum("cost", cell)
		avg, _ := agg.Avg("cost", cell)
		fmt.Printf("cost at %-7s          sum=%d avg=%.0f\n", sys.DomainLabel(cell)+":", sum, avg)
	}

	// Exemplary aggregations (§6.3, §6.4).
	max, err := sys.PSIMax(ctx, "age")
	must(err)
	for _, cell := range max.Cells {
		pca := max.PerCell[cell]
		fmt.Printf("max age at %-7s       %d, held by hospitals %v\n",
			sys.DomainLabel(cell)+":", pca.Value, hospitalNames(pca.Owners))
	}
	min, err := sys.PSIMin(ctx, "age")
	must(err)
	for _, cell := range min.Cells {
		fmt.Printf("min age at %-7s       %d\n", sys.DomainLabel(cell)+":", min.PerCell[cell].Value)
	}
	med, err := sys.PSIMedian(ctx, "cost")
	must(err)
	for _, cell := range med.Cells {
		fmt.Printf("median hospital cost at %s: %d\n", sys.DomainLabel(cell), med.PerCell[cell].Value)
	}
}

func hospitalNames(idx []int) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = fmt.Sprintf("Hospital %d", j+1)
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
