package prism

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"prism/internal/gateway"
)

// startSystemGateway serves a gateway over sys's full-system backends
// on a loopback listener, torn down when the test ends.
func startSystemGateway(t *testing.T, sys *System, cfg gateway.Config) string {
	t.Helper()
	cfg.Backends = sys.GatewayBackends()
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- gw.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("gateway Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

func sortedCells(cells []uint64) []uint64 {
	s := append([]uint64(nil), cells...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// TestGatewaySystemParity runs every front-protocol query kind through
// a gateway over the full local system and requires each answer to be
// identical to the direct-path result — including the coordinated
// extremes, which the full-system backend (unlike a pooled owner
// engine) can serve. All sessions must be retired afterwards.
func TestGatewaySystemParity(t *testing.T) {
	sys := concSystem(t)
	addr := startSystemGateway(t, sys, gateway.Config{})
	cl, err := gateway.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	dPSI, err := sys.PSI(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gPSI, err := cl.Query("psi", nil, "t0", 30*time.Second)
	if err != nil {
		t.Fatalf("gateway psi: %v", err)
	}
	if !reflect.DeepEqual(sortedCells(gPSI.Cells), sortedCells(dPSI.Cells)) {
		t.Errorf("psi cells diverged: gateway %v, direct %v", gPSI.Cells, dPSI.Cells)
	}

	dCount, err := sys.PSICount(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gCount, err := cl.Query("count", nil, "t0", 30*time.Second)
	if err != nil {
		t.Fatalf("gateway count: %v", err)
	}
	if gCount.Count != dCount.Count {
		t.Errorf("count diverged: gateway %d, direct %d", gCount.Count, dCount.Count)
	}

	dSum, err := sys.PSISum(ctx, "v")
	if err != nil {
		t.Fatal(err)
	}
	gSum, err := cl.Query("sum", []string{"v"}, "t0", 30*time.Second)
	if err != nil {
		t.Fatalf("gateway sum: %v", err)
	}
	if !reflect.DeepEqual(gSum.Sums["v"], dSum.Sums["v"]) {
		t.Errorf("sum diverged: gateway %v, direct %v", gSum.Sums["v"], dSum.Sums["v"])
	}

	dMax, err := sys.PSIMax(ctx, "v")
	if err != nil {
		t.Fatal(err)
	}
	gMax, err := cl.Query("max", []string{"v"}, "t0", 30*time.Second)
	if err != nil {
		t.Fatalf("gateway max: %v", err)
	}
	for cell, pc := range dMax.PerCell {
		if gMax.Extreme[cell] != pc.Value {
			t.Errorf("max at cell %d diverged: gateway %d, direct %d", cell, gMax.Extreme[cell], pc.Value)
		}
	}
	if len(gMax.Extreme) != len(dMax.PerCell) {
		t.Errorf("max cells: gateway %d, direct %d", len(gMax.Extreme), len(dMax.PerCell))
	}
	if dMax.Global != nil && (gMax.Global == nil || *gMax.Global != dMax.Global.Value) {
		t.Errorf("global max diverged: gateway %v, direct %d", gMax.Global, dMax.Global.Value)
	}

	assertNoSessions(t, sys)
}

// TestGatewayMidQueryDisconnect is the session-cleanup fault injection:
// front clients vanish at staggered points inside in-flight extreme
// queries — the only operator class that opens announcer and server
// query sessions — and every session must still be retired. The root
// extreme flow ends its query under a cancellation-immune context
// precisely so an abandoned gateway query cannot leak announcer state;
// this test holds that end to end through the front tier.
func TestGatewayMidQueryDisconnect(t *testing.T) {
	sys := concSystem(t)
	addr := startSystemGateway(t, sys, gateway.Config{DefaultTimeout: 10 * time.Second})

	// Baseline: one clean max query, timed, to scale the disconnect
	// points to this machine.
	cl, err := gateway.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := cl.Query("max", []string{"v"}, "t0", 10*time.Second); err != nil {
		t.Fatalf("baseline max: %v", err)
	}
	lat := time.Since(start)
	cl.Close()

	// Disconnect mid-flight at points spread across the query's
	// lifetime (including before execution starts).
	delays := []time.Duration{0, lat / 8, lat / 4, lat / 2, 3 * lat / 4}
	for i, d := range delays {
		cl, err := gateway.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Submit("max", []string{"v"}, fmt.Sprintf("t%d", i), 10*time.Second); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		time.Sleep(d)
		cl.Close() // the ticket dies with the connection; the query is cancelled
	}

	// Whatever mix of interrupted and completed queries that produced,
	// every server and announcer session must drain.
	deadline := time.Now().Add(15 * time.Second)
	for {
		live := sys.ann.Sessions()
		for _, grp := range sys.servers {
			for _, e := range grp {
				live += e.Sessions()
			}
		}
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d query sessions still live 15s after all clients disconnected", live)
		}
		time.Sleep(20 * time.Millisecond)
	}
	assertNoSessions(t, sys)
}
