package prism

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// OpKind enumerates the operators the query scheduler can run.
type OpKind int

// Scheduler operator kinds.
const (
	OpPSI OpKind = iota
	OpPSU
	OpPSICount
	OpPSUCount
	OpPSISum
	OpPSIAvg
	OpPSUSum
	OpPSUAvg
	OpPSIMax
	OpPSIMin
	OpPSIMedian
)

func (k OpKind) String() string {
	switch k {
	case OpPSI:
		return "PSI"
	case OpPSU:
		return "PSU"
	case OpPSICount:
		return "PSI Count"
	case OpPSUCount:
		return "PSU Count"
	case OpPSISum:
		return "PSI Sum"
	case OpPSIAvg:
		return "PSI Avg"
	case OpPSUSum:
		return "PSU Sum"
	case OpPSUAvg:
		return "PSU Avg"
	case OpPSIMax:
		return "PSI Max"
	case OpPSIMin:
		return "PSI Min"
	case OpPSIMedian:
		return "PSI Median"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Request describes one query for the scheduler. Sum/avg ops take one or
// more aggregation columns; max/min/median take exactly one.
type Request struct {
	Op   OpKind
	Cols []string
	// PinOwner routes the query to OwnerIdx instead of letting the
	// scheduler rotate round-robin (the zero-value default).
	PinOwner bool
	OwnerIdx int
}

// Response is the outcome of one scheduled query. Exactly one of Set,
// Count, Agg, Extreme is non-nil on success, matching the request's Op.
type Response struct {
	Op    OpKind
	Owner int // index of the owner that drove the query

	Set     *SetResult
	Count   *CountResult
	Agg     *AggregateResult
	Extreme *ExtremeResult
	Err     error
}

// Future is the handle for an in-flight asynchronous query.
type Future struct {
	ch   chan *Response
	once sync.Once
	resp *Response
}

// Wait blocks until the query finishes and returns its response.
// Repeated calls return the same response.
func (f *Future) Wait() *Response {
	f.once.Do(func() { f.resp = <-f.ch })
	return f.resp
}

// limiter bounds the number of concurrently executing queries. Unlike a
// semaphore channel its width can be changed while queries are in
// flight (SetMaxInflight); running queries finish normally and the new
// width applies as slots free up.
type limiter struct {
	mu       sync.Mutex
	cond     *sync.Cond
	limit    int
	inflight int
}

func newLimiter(limit int) *limiter {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	l := &limiter{limit: limit}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// acquire blocks until a slot is free or ctx is done.
func (l *limiter) acquire(ctx context.Context) error {
	// Wake all waiters when the context dies so they can observe it.
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.inflight >= l.limit {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	l.inflight++
	return nil
}

func (l *limiter) release() {
	l.mu.Lock()
	l.inflight--
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *limiter) setLimit(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	l.mu.Lock()
	l.limit = n
	l.mu.Unlock()
	l.cond.Broadcast()
}

// SetMaxInflight changes the scheduler's concurrency bound while the
// system is live. Queries already executing are unaffected; the new
// bound governs when queued queries may start.
func (s *System) SetMaxInflight(n int) { s.sched.setLimit(n) }

// QueryAsync submits one query to the bounded scheduler and returns
// immediately. The query starts once an in-flight slot is free and,
// unless req.PinOwner is set, is routed to the next owner round-robin.
// All scheduler entry points are safe for concurrent use.
func (s *System) QueryAsync(ctx context.Context, req Request) *Future {
	f := &Future{ch: make(chan *Response, 1)}
	go func() {
		if err := s.sched.acquire(ctx); err != nil {
			f.ch <- &Response{Op: req.Op, Owner: -1, Err: err}
			return
		}
		defer s.sched.release()
		f.ch <- s.execute(ctx, req)
	}()
	return f
}

// QueryBatch runs a batch of queries through the scheduler and waits for
// all of them. Responses are positionally parallel to reqs; per-query
// failures land in Response.Err rather than failing the batch.
func (s *System) QueryBatch(ctx context.Context, reqs []Request) []*Response {
	futures := make([]*Future, len(reqs))
	for i, r := range reqs {
		futures[i] = s.QueryAsync(ctx, r)
	}
	out := make([]*Response, len(reqs))
	for i, f := range futures {
		out[i] = f.Wait()
	}
	return out
}

// validateCols checks the request's column arity against its operator
// before any owner work starts: set/count operators carry no columns,
// sum/avg take one or more, max/min/median exactly one. Without this
// check an extreme query with several columns would silently answer for
// Cols[0] only, and one with none would query the empty column name.
func validateCols(req Request) error {
	switch req.Op {
	case OpPSI, OpPSU, OpPSICount, OpPSUCount:
		if len(req.Cols) != 0 {
			return fmt.Errorf("prism: %v takes no columns, got %d %v", req.Op, len(req.Cols), req.Cols)
		}
	case OpPSISum, OpPSIAvg, OpPSUSum, OpPSUAvg:
		if len(req.Cols) == 0 {
			return fmt.Errorf("prism: %v needs at least one aggregation column", req.Op)
		}
	case OpPSIMax, OpPSIMin, OpPSIMedian:
		if len(req.Cols) != 1 {
			return fmt.Errorf("prism: %v takes exactly one column, got %d %v", req.Op, len(req.Cols), req.Cols)
		}
	default:
		return fmt.Errorf("prism: unknown operator %v", req.Op)
	}
	return nil
}

// execute runs one request synchronously on its target owner. Error
// responses that never reached an owner report Owner: -1.
func (s *System) execute(ctx context.Context, req Request) *Response {
	if err := validateCols(req); err != nil {
		return &Response{Op: req.Op, Owner: -1, Err: err}
	}
	var ow *Owner
	if req.PinOwner {
		if req.OwnerIdx < 0 || req.OwnerIdx >= len(s.owners) {
			return &Response{Op: req.Op, Owner: -1,
				Err: fmt.Errorf("prism: owner index %d out of range [0,%d)", req.OwnerIdx, len(s.owners))}
		}
		ow = s.owners[req.OwnerIdx]
	} else {
		var err error
		if ow, err = s.nextQuerier(); err != nil {
			return &Response{Op: req.Op, Owner: -1, Err: err}
		}
	}
	resp := &Response{Op: req.Op, Owner: ow.idx}
	switch req.Op {
	case OpPSI:
		resp.Set, resp.Err = ow.PSI(ctx)
	case OpPSU:
		resp.Set, resp.Err = ow.PSU(ctx)
	case OpPSICount:
		resp.Count, resp.Err = ow.PSICount(ctx)
	case OpPSUCount:
		resp.Count, resp.Err = ow.PSUCount(ctx)
	case OpPSISum:
		resp.Agg, resp.Err = ow.PSISum(ctx, req.Cols...)
	case OpPSIAvg:
		resp.Agg, resp.Err = ow.PSIAvg(ctx, req.Cols...)
	case OpPSUSum:
		resp.Agg, resp.Err = ow.PSUSum(ctx, req.Cols...)
	case OpPSUAvg:
		resp.Agg, resp.Err = ow.PSUAvg(ctx, req.Cols...)
	case OpPSIMax:
		resp.Extreme, resp.Err = ow.PSIMax(ctx, req.Cols[0])
	case OpPSIMin:
		resp.Extreme, resp.Err = ow.PSIMin(ctx, req.Cols[0])
	case OpPSIMedian:
		resp.Extreme, resp.Err = ow.PSIMedian(ctx, req.Cols[0])
	}
	return resp
}
