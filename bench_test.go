// Benchmarks regenerating the paper's tables and figures as testing.B
// benches. Each family maps to one artifact of §8 (the experiment index
// is in internal/benchx and docs/OPERATIONS.md); cmd/prism-bench runs
// the same experiments at presentation scale.
//
// Default sizes are bench-friendly (64K-cell domains); the shapes — not
// the absolute numbers — are the reproduction target.
package prism_test

import (
	"context"
	"fmt"
	"testing"

	"prism/internal/baseline"
	"prism/internal/benchx"
	"prism/internal/prg"
)

const benchDomain = 1 << 16

// BenchmarkExp1Fig3 sweeps the Figure 3 operators across server thread
// counts (10 owners).
func BenchmarkExp1Fig3(b *testing.B) {
	sys, _, _, err := benchx.Build(benchx.SystemSpec{
		Owners: 10, Domain: benchDomain, AggCols: []string{"DT", "PK"}, Seed: "exp1",
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, threads := range []int{1, 2, 3, 4, 5} {
		sys.SetServerThreads(threads)
		for _, op := range benchx.Ops {
			col := "DT"
			if op == "PSI Max" || op == "PSI Median" {
				col = "PK"
			}
			b.Run(fmt.Sprintf("threads=%d/%s", threads, op), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := benchx.RunOp(ctx, sys, op, col); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable12MultiColumn times sum and max over 1-4 attributes.
func BenchmarkTable12MultiColumn(b *testing.B) {
	sys, _, _, err := benchx.Build(benchx.SystemSpec{
		Owners: 10, Domain: benchDomain,
		AggCols: []string{"PK", "LN", "SK", "DT"}, Seed: "table12",
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for n := 1; n <= 4; n++ {
		b.Run(fmt.Sprintf("Sum/attrs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := benchx.MultiColSum(ctx, sys, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for n := 1; n <= 4; n++ {
		b.Run(fmt.Sprintf("Max/attrs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := benchx.MultiColMax(ctx, sys, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExp2Fig4Owners sweeps the owner count (Figure 4).
func BenchmarkExp2Fig4Owners(b *testing.B) {
	ctx := context.Background()
	for _, m := range []int{10, 20, 30, 40, 50} {
		sys, _, _, err := benchx.Build(benchx.SystemSpec{
			Owners: m, Domain: benchDomain, Seed: fmt.Sprintf("exp2-%d", m),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, op := range []string{"PSI", "PSU", "PSI Sum"} {
			b.Run(fmt.Sprintf("owners=%d/%s", m, op), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := benchx.RunOp(ctx, sys, op, "DT"); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExp3Table14OwnerTime reports owner-side result-construction
// time per operator as a custom metric (owner-ns/op).
func BenchmarkExp3Table14OwnerTime(b *testing.B) {
	sys, _, _, err := benchx.Build(benchx.SystemSpec{
		Owners: 10, Domain: benchDomain, Seed: "exp3",
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, op := range []string{"PSI", "PSI Count", "PSI Sum", "PSI Avg", "PSI Max", "PSU"} {
		b.Run(op, func(b *testing.B) {
			var ownerNS int64
			for i := 0; i < b.N; i++ {
				r, err := benchx.RunOp(ctx, sys, op, "DT")
				if err != nil {
					b.Fatal(err)
				}
				ownerNS += r.OwnerNS
			}
			b.ReportMetric(float64(ownerNS)/float64(b.N), "owner-ns/op")
		})
	}
}

// BenchmarkExp4Fig5Bucketization measures the traversal simulation per
// fill factor and reports the actual domain size as a metric.
func BenchmarkExp4Fig5Bucketization(b *testing.B) {
	for _, fill := range []float64{0.01, 0.001, 0.0001} {
		b.Run(fmt.Sprintf("fill=%g%%", fill*100), func(b *testing.B) {
			var actual uint64
			for i := 0; i < b.N; i++ {
				pts := benchx.Fig5(10_000_000, 10, []float64{fill}, "bench")
				actual = pts[0].ActualWith
			}
			b.ReportMetric(float64(actual), "actual-domain-cells")
		})
	}
}

// BenchmarkShareGeneration measures Phase 1 (§8.1's share-generation
// paragraph): building and splitting all Table-11 columns.
func BenchmarkShareGeneration(b *testing.B) {
	for _, verify := range []bool{false, true} {
		b.Run(fmt.Sprintf("verify=%v", verify), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, sg, err := benchx.Build(benchx.SystemSpec{
					Owners: 10, Domain: benchDomain, Verify: verify,
					AggCols: []string{"PK", "LN", "SK", "DT"},
					Seed:    fmt.Sprintf("sharegen-%d", i),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sg.TotalNS())/1e6, "sharegen-ms")
			}
		})
	}
}

// BenchmarkTable13TwoOwnerPSI measures Prism's PSI at two owners (the
// configuration Table 13 compares against other systems).
func BenchmarkTable13TwoOwnerPSI(b *testing.B) {
	sys, _, _, err := benchx.Build(benchx.SystemSpec{
		Owners: 2, Domain: benchDomain, Seed: "table13",
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchx.RunOp(ctx, sys, "PSI", "DT"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable13NaiveBaseline measures the naive pairwise baseline's
// quadratic blowup for the same two-owner setting.
func BenchmarkTable13NaiveBaseline(b *testing.B) {
	rng := prg.New(prg.SeedFromString("naive-bench"))
	for _, n := range []int{512, 1024, 2048} {
		x := make([]uint64, n)
		y := make([]uint64, n)
		for i := range x {
			x[i] = rng.Uint64n(uint64(4 * n))
			y[i] = rng.Uint64n(uint64(4 * n))
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.NaivePairwisePSI([][]uint64{x, y})
			}
		})
	}
}

// BenchmarkVerificationOverhead quantifies the §5.2 verification cost
// relative to plain PSI (an ablation of the design's verify layer).
func BenchmarkVerificationOverhead(b *testing.B) {
	ctx := context.Background()
	for _, verify := range []bool{false, true} {
		sys, _, _, err := benchx.Build(benchx.SystemSpec{
			Owners: 10, Domain: benchDomain, Verify: verify, Seed: "vo",
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("verify=%v", verify), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := benchx.RunOp(ctx, sys, "PSI", "DT"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
