package prism

import (
	"context"
	"math"
	"testing"
)

// TestPaperFixedPointExample reproduces §4's worked example: the maximum
// over {0.5, 8.2, 8.02} is found by computing over {50, 820, 802}.
func TestPaperFixedPointExample(t *testing.T) {
	fp, err := NewFixedPoint(2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []float64{0.5, 8.2, 8.02}
	want := []uint64{50, 820, 802}
	for i, v := range inputs {
		got, err := fp.Encode(v)
		if err != nil || got != want[i] {
			t.Errorf("Encode(%v) = %d, %v; want %d", v, got, err, want[i])
		}
	}
	if fp.Decode(820) != 8.2 {
		t.Errorf("Decode(820) = %v", fp.Decode(820))
	}
}

func TestFixedPointRejects(t *testing.T) {
	if _, err := NewFixedPoint(-1); err == nil {
		t.Error("negative precision accepted")
	}
	if _, err := NewFixedPoint(19); err == nil {
		t.Error("overflowing precision accepted")
	}
	fp, _ := NewFixedPoint(3)
	for _, v := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := fp.Encode(v); err == nil {
			t.Errorf("Encode(%v) accepted", v)
		}
	}
	if _, err := fp.Encode(1e19); err == nil {
		t.Error("overflow accepted")
	}
}

// TestFixedPointExactRangeBoundary pins Encode's guard to the float64
// exactly-representable range: 2^53 encodes, anything scaling past it is
// rejected — including the values the old >= MaxUint64 comparison let
// through with silent integer precision loss.
func TestFixedPointExactRangeBoundary(t *testing.T) {
	fp0, _ := NewFixedPoint(0)
	limit := float64(uint64(1) << 53)
	got, err := fp0.Encode(limit)
	if err != nil || got != uint64(1)<<53 {
		t.Errorf("Encode(2^53) = %d, %v; want exact 2^53", got, err)
	}
	for _, v := range []float64{
		limit * 1.000001, // just past the exact range
		1e16,             // lossy: 1e16 > 2^53
		1.5e19,           // old bug: passed the >= MaxUint64 float compare
		float64(math.MaxUint64),
	} {
		if enc, err := fp0.Encode(v); err == nil {
			t.Errorf("Encode(%g) = %d, want exact-range rejection", v, enc)
		}
	}
	// The scale factor counts: at k=6, 1e10 scales to 1e16 — lossy.
	fp6, _ := NewFixedPoint(6)
	if _, err := fp6.Encode(1e10); err == nil {
		t.Error("Encode(1e10) at precision 6 accepted beyond the exact range")
	}
	if got, err := fp6.Encode(1e9); err != nil || got != 1e15 {
		t.Errorf("Encode(1e9) at precision 6 = %d, %v; want 1e15", got, err)
	}
}

// TestFixedPointMaxEndToEnd runs the §4 float recipe through the real
// max protocol: three owners with decimal readings.
func TestFixedPointMaxEndToEnd(t *testing.T) {
	fp, _ := NewFixedPoint(2)
	dom, _ := ValueDomain("sensor")
	sys, err := NewLocalSystem(Config{
		Owners: 3, Domain: dom, AggColumns: []string{"temp"},
		MaxAggValue: 100000, Verify: true, Seed: [32]byte{31},
	})
	if err != nil {
		t.Fatal(err)
	}
	readings := []float64{0.5, 8.2, 8.02}
	for j, r := range readings {
		enc, err := fp.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Owner(j).Load([]Row{{StrKey: "sensor", Aggs: map[string]uint64{"temp": enc}}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.OutsourceAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := sys.PSIMax(context.Background(), "temp")
	if err != nil {
		t.Fatal(err)
	}
	pc := res.PerCell[res.Cells[0]]
	if got := fp.Decode(pc.Value); got != 8.2 {
		t.Errorf("max = %v, want 8.2", got)
	}
	if len(pc.Owners) != 1 || pc.Owners[0] != 1 {
		t.Errorf("max holder = %v, want owner 1", pc.Owners)
	}
}
