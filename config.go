package prism

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"prism/internal/domain"
	"prism/internal/prg"
	"prism/internal/transport"
)

// Domain is the publicly known domain of the set attribute A_c — or, for
// multi-attribute PSI (§6.6), the product of several attribute domains.
// All owners must construct it from the same public description so that
// cell numbering aligns (paper §4, owner assumption (v)).
type Domain struct {
	d *domain.Domain
	p *domain.Product
}

// IntDomain returns the integer domain {lo, ..., hi} — e.g. the paper's
// Orderkey domains 1..5M and 1..20M.
func IntDomain(lo, hi uint64) (*Domain, error) {
	d, err := domain.NewIntRange(lo, hi)
	if err != nil {
		return nil, err
	}
	return &Domain{d: d}, nil
}

// ValueDomain returns a categorical domain (e.g. disease names).
// Values are de-duplicated and sorted.
func ValueDomain(values ...string) (*Domain, error) {
	d, err := domain.NewValues(values)
	if err != nil {
		return nil, err
	}
	return &Domain{d: d}, nil
}

// ProductDomain combines several attribute domains into one cell space
// for multi-attribute PSI (paper §6.6): b = Π|Dom(A_i)|. Rows then carry
// one key per attribute in Keys (string keys for categorical dims,
// decimal integers for integer dims).
func ProductDomain(dims ...*Domain) (*Domain, error) {
	raw := make([]*domain.Domain, len(dims))
	for i, d := range dims {
		if d == nil || d.d == nil {
			return nil, errors.New("prism: product dimensions must be scalar domains")
		}
		raw[i] = d.d
	}
	p, err := domain.NewProduct(raw...)
	if err != nil {
		return nil, err
	}
	return &Domain{p: p}, nil
}

// Size returns the number of cells b = |Dom(A_c)|.
func (d *Domain) Size() uint64 {
	if d.p != nil {
		return d.p.Size()
	}
	return d.d.Size()
}

// Label renders the value at a cell ("a|b" for product domains).
func (d *Domain) Label(cell uint64) string {
	if d.p != nil {
		coords := d.p.Split(cell)
		parts := make([]string, len(coords))
		for i, c := range coords {
			parts[i] = d.p.Dims()[i].Label(c)
		}
		return strings.Join(parts, "|")
	}
	return d.d.Label(cell)
}

// cellOfRow maps a row's key(s) to the domain cell.
func (d *Domain) cellOfRow(r Row) (uint64, error) {
	if d.p != nil {
		dims := d.p.Dims()
		if len(r.Keys) != len(dims) {
			return 0, fmt.Errorf("prism: row has %d keys for a %d-attribute domain", len(r.Keys), len(dims))
		}
		coords := make([]uint64, len(dims))
		for i, dim := range dims {
			var cell uint64
			var ok bool
			if dim.Categorical() {
				cell, ok = dim.CellOfString(r.Keys[i])
			} else {
				v, err := strconv.ParseUint(r.Keys[i], 10, 64)
				if err != nil {
					return 0, fmt.Errorf("prism: key %q is not an integer for dimension %d", r.Keys[i], i)
				}
				cell, ok = dim.CellOfInt(v)
			}
			if !ok {
				return 0, fmt.Errorf("prism: key %q outside dimension %d", r.Keys[i], i)
			}
			coords[i] = cell
		}
		return d.p.Cell(coords)
	}
	var cell uint64
	var ok bool
	if d.d.Categorical() {
		cell, ok = d.d.CellOfString(r.StrKey)
	} else {
		cell, ok = d.d.CellOfInt(r.IntKey)
	}
	if !ok {
		return 0, fmt.Errorf("prism: row key %q/%d outside the public domain", r.StrKey, r.IntKey)
	}
	return cell, nil
}

// Row is one tuple of an owner's private table. For scalar domains set
// IntKey or StrKey (matching the domain kind); for product domains set
// Keys with one entry per attribute. Aggs holds the A_x values.
type Row struct {
	IntKey uint64
	StrKey string
	Keys   []string
	Aggs   map[string]uint64
}

// Config assembles a Prism deployment.
type Config struct {
	// Owners is m, the number of DB owners. The paper targets m > 2 but
	// two-owner deployments work (Table 13 uses them).
	Owners int
	// Domain of the set attribute.
	Domain *Domain
	// AggColumns lists the aggregation columns every owner will
	// outsource (Shamir-shared per-cell sums, plus a count column).
	AggColumns []string
	// MaxAggValue bounds every value submitted to exemplary
	// aggregations: individual A_x values for max/min, and per-owner
	// per-cell totals for median (the paper's median aggregates per
	// owner first, §6.4). It sizes the big modulus Q for the
	// order-preserving masking. 0 → 2^20. Keep it as tight as the data
	// allows: Q grows like MaxAggValue^(m+2).
	MaxAggValue uint64
	// Verify outsources χ̄ and the v-columns and enables result
	// verification on every query.
	Verify bool
	// Threads is each server's worker-pool width (Figure 3 sweep).
	Threads int
	// Groups partitions the cell domain across this many independent
	// server groups: each group is a full S0/S1/S2 triple serving a
	// contiguous cell range, with its own permutations and share streams
	// but deployment-global masking parameters (so cross-group extreme
	// results stay comparable). Owners route each query window to the
	// owning group and run groups concurrently; results merge
	// owner-side. 0 or 1 → the classic single-group deployment
	// (bit-for-bit identical wiring and share streams).
	Groups int
	// MaxInflight bounds how many scheduled queries (QueryAsync /
	// QueryBatch) execute simultaneously. 0 → GOMAXPROCS. Resizable at
	// runtime via System.SetMaxInflight.
	MaxInflight int
	// PerConnInflight bounds how many RPCs may be pipelined to one
	// server at a time: on the TCP transport it is the per-connection
	// multiplexing depth (client in-flight cap and server worker-pool
	// width); the in-process fabric applies the same bound per server
	// address so local-mode scheduling matches a wire deployment.
	// 0 → transport.DefaultPerConnInflight.
	PerConnInflight int
	// ShardCells splits every O(b) owner↔server exchange — table
	// uploads, PSI/PSU/count vectors, aggregation selectors and replies
	// — into windows of at most ShardCells cells, each moving as its own
	// frame over the multiplexed transport, with partial results merged
	// incrementally owner-side. This bounds per-request frame size (and
	// per-request buffer lifetime) by the shard size regardless of the
	// domain, so domains whose monolithic frames would exceed
	// transport.MaxFrameBytes become servable. 0 (the default) keeps the
	// monolithic one-frame-per-exchange wire behaviour. A query keeps at
	// most 8 shard exchanges in flight, so the effective pipelining
	// depth per server connection is min(8, PerConnInflight). With
	// disk-backed servers, enable HotColumns (or set a HotChunks budget)
	// alongside sharding so hot chunks are read from disk once; without
	// the cache every shard window re-reads its overlapping chunks.
	ShardCells uint64
	// HotColumns enables each server's per-table hot-chunk cache in
	// disk-backed mode (DiskDir set): χ-shares and aggregation columns
	// are cached at chunk granularity per table epoch — invalidated
	// when any owner re-outsources or the table is dropped — instead of
	// read per query. Leave it off to measure true per-query fetch
	// times (the Figure 3 data-fetch series). Without a HotChunks
	// budget the cache is unbounded (the legacy hot-column behaviour).
	HotColumns bool
	// HotChunks bounds each server's per-table hot-chunk cache to this
	// many bytes: least-recently-used chunks are evicted past the
	// budget, so a disk-backed server's query-path residency stays
	// O(budget) no matter how large the domain grows. Setting it
	// implies HotColumns. 0 leaves the cache unbounded (when
	// HotColumns) or disabled (otherwise).
	HotChunks uint64
	// ChunkCells sets the share store's chunk size in cells for newly
	// written columns (disk-backed mode). 0 → sharestore's default
	// (64Ki cells). Pair it with ShardCells — chunks aligned to the
	// shard windows make every streamed upload window a whole-chunk
	// write and every shard query a minimal chunk fetch.
	ChunkCells uint64
	// PendingUploadTTL reclaims sharded-upload assemblies abandoned by
	// a crashed owner: server-side assemblies that have not received a
	// shard for longer than the TTL are swept (RAM buffers released,
	// pending disk columns deleted) on the next store request. 0
	// disables the sweep — stale assemblies then linger until the owner
	// retries or the table is dropped.
	PendingUploadTTL time.Duration
	// DeltaMaxEntries triggers a compaction pass on a server once a
	// table's merged-but-uncompacted delta entries (incremental updates,
	// Owner.Update) reach this count: the base columns are rewritten
	// with the overlay values and the absorbed delta-log segments are
	// deleted. 0 disables threshold-triggered compaction; updates then
	// accumulate in the overlay until CompactInterval (or a manual
	// CompactTables call) folds them down.
	DeltaMaxEntries int
	// CompactInterval runs each server's compaction pass on a timer
	// regardless of delta density, bounding how long the delta log can
	// grow under a trickle of updates. 0 disables the timer. Timer-based
	// servers need System.Close to stop their tickers.
	CompactInterval time.Duration
	// Seed makes the whole system deterministic; zero → fresh entropy.
	Seed [32]byte
	// DiskDir, when set, backs each server with an on-disk share store
	// under DiskDir/server-<i>; queries then measure real fetch time.
	DiskDir string
	// AutoRecover makes each disk-backed server reload its serving state
	// from the share store's table manifests at construction time (the
	// cold-boot recovery path, CLI: prism-server -recover): tables whose
	// manifests validate against the chunk segments on disk are served
	// again without any owner re-outsourcing, corrupt or
	// partially-promoted tables are quarantined under the store's
	// .quarantine/ area, and crashed mid-upload assemblies are reclaimed.
	// NewLocalSystem fails only on store-scan I/O errors — per-table
	// problems quarantine instead of failing boot. Requires DiskDir.
	AutoRecover bool
	// EncodeWire forces gob round-trips on the in-process transport,
	// exercising exactly what the TCP transport sends.
	EncodeWire bool
	// Trace records a per-phase timeline for every query: the system
	// mints one trace id per query, the engines stamp it onto the wire
	// requests, and every site (owner exchange, server fetch/patch/
	// compute, announcer rounds) annotates spans the system assembles
	// into a System.QueryTrace(id) timeline. Off by default — traced
	// queries pay a few spans per request on the wire.
	Trace bool
	// Delta overrides the additive-group prime δ (0 → 113, the paper's).
	Delta uint64
	// TableName names the outsourced table (default "main").
	TableName string
}

func (c *Config) normalize() error {
	if c.Owners < 2 {
		return errors.New("prism: need at least 2 owners")
	}
	if c.Domain == nil {
		return errors.New("prism: config needs a Domain")
	}
	if c.MaxAggValue == 0 {
		c.MaxAggValue = 1 << 20
	}
	if c.Groups < 0 {
		return errors.New("prism: Groups must be >= 0")
	}
	if c.Groups <= 1 {
		c.Groups = 1
	}
	if uint64(c.Groups) > c.Domain.Size() {
		return fmt.Errorf("prism: %d groups cannot tile a %d-cell domain", c.Groups, c.Domain.Size())
	}
	if c.PerConnInflight < 0 {
		return errors.New("prism: PerConnInflight must be >= 0")
	}
	if c.PerConnInflight == 0 {
		c.PerConnInflight = transport.DefaultPerConnInflight
	}
	if c.DeltaMaxEntries < 0 || c.CompactInterval < 0 {
		return errors.New("prism: DeltaMaxEntries and CompactInterval must be >= 0")
	}
	if c.AutoRecover && c.DiskDir == "" {
		// Mirror prism-server, which rejects -recover without -store
		// -disk: silently booting empty would defeat the whole point.
		return errors.New("prism: AutoRecover requires DiskDir")
	}
	if c.TableName == "" {
		c.TableName = "main"
	}
	return nil
}

func (c *Config) seed() prg.Seed { return prg.Seed(c.Seed) }
