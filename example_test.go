package prism_test

import (
	"context"
	"fmt"
	"log"

	"prism"
)

// Example reproduces the paper's three-hospital walkthrough: PSI over
// the disease attribute with result verification.
func Example() {
	dom, err := prism.ValueDomain("Cancer", "Fever", "Heart")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := prism.NewLocalSystem(prism.Config{
		Owners:      3,
		Domain:      dom,
		AggColumns:  []string{"cost"},
		MaxAggValue: 10000,
		Verify:      true,
		Seed:        [32]byte{1},
	})
	if err != nil {
		log.Fatal(err)
	}
	load := func(i int, rows ...prism.Row) {
		if err := sys.Owner(i).Load(rows); err != nil {
			log.Fatal(err)
		}
	}
	load(0,
		prism.Row{StrKey: "Cancer", Aggs: map[string]uint64{"cost": 100}},
		prism.Row{StrKey: "Cancer", Aggs: map[string]uint64{"cost": 200}},
		prism.Row{StrKey: "Heart", Aggs: map[string]uint64{"cost": 300}})
	load(1,
		prism.Row{StrKey: "Cancer", Aggs: map[string]uint64{"cost": 100}},
		prism.Row{StrKey: "Fever", Aggs: map[string]uint64{"cost": 70}},
		prism.Row{StrKey: "Fever", Aggs: map[string]uint64{"cost": 50}})
	load(2,
		prism.Row{StrKey: "Cancer", Aggs: map[string]uint64{"cost": 300}},
		prism.Row{StrKey: "Cancer", Aggs: map[string]uint64{"cost": 700}},
		prism.Row{StrKey: "Heart", Aggs: map[string]uint64{"cost": 500}})

	if _, err := sys.OutsourceAll(context.Background()); err != nil {
		log.Fatal(err)
	}
	res, err := sys.PSI(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("common diseases:", res.Values)
	// Output:
	// common diseases: [Cancer]
}

// ExampleSystem_PSISum shows the §6.1 intersection-sum: the total cost
// across all hospitals for every disease they all treat.
func ExampleSystem_PSISum() {
	dom, _ := prism.ValueDomain("Cancer", "Fever", "Heart")
	sys, err := prism.NewLocalSystem(prism.Config{
		Owners: 3, Domain: dom, AggColumns: []string{"cost"},
		MaxAggValue: 10000, Seed: [32]byte{2},
	})
	if err != nil {
		log.Fatal(err)
	}
	costs := [][]uint64{{100, 200}, {1100}, {300, 700}}
	for i, cs := range costs {
		var rows []prism.Row
		for _, c := range cs {
			rows = append(rows, prism.Row{StrKey: "Cancer", Aggs: map[string]uint64{"cost": c}})
		}
		if err := sys.Owner(i).Load(rows); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sys.OutsourceAll(context.Background()); err != nil {
		log.Fatal(err)
	}
	res, err := sys.PSISum(context.Background(), "cost")
	if err != nil {
		log.Fatal(err)
	}
	for _, cell := range res.Cells {
		total, _ := res.Sum("cost", cell)
		fmt.Printf("%s: %d\n", sys.DomainLabel(cell), total)
	}
	// Output:
	// Cancer: 2400
}

// ExampleSystem_PSICount shows cardinality-only queries: the querier
// learns how many values are common, never which ones (§6.5).
func ExampleSystem_PSICount() {
	dom, _ := prism.IntDomain(1, 100)
	sys, err := prism.NewLocalSystem(prism.Config{Owners: 2, Domain: dom, Seed: [32]byte{3}})
	if err != nil {
		log.Fatal(err)
	}
	sys.Owner(0).Load([]prism.Row{{IntKey: 10}, {IntKey: 20}, {IntKey: 30}})
	sys.Owner(1).Load([]prism.Row{{IntKey: 20}, {IntKey: 30}, {IntKey: 40}})
	if _, err := sys.OutsourceAll(context.Background()); err != nil {
		log.Fatal(err)
	}
	res, err := sys.PSICount(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("common values:", res.Count)
	// Output:
	// common values: 2
}

// ExampleFixedPoint shows the paper's §4 recipe for decimal data.
func ExampleFixedPoint() {
	fp, _ := prism.NewFixedPoint(2)
	for _, v := range []float64{0.5, 8.2, 8.02} {
		enc, _ := fp.Encode(v)
		fmt.Println(enc)
	}
	// Output:
	// 50
	// 820
	// 802
}
